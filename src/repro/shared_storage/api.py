"""The user-defined filesystem (UDFS) API — section 5.3, Figure 9.

All engine file access goes through :class:`Filesystem` so the same scan,
load, and catalog code runs against POSIX, the simulated S3, or anything a
user plugs in.  The interface deliberately omits ``exists``-via-HEAD: the
paper notes that a HEAD probe downgrades S3's read-after-write consistency
for new objects, so Vertica checks existence with the *list* API.  We bake
that into the interface: existence checks are spelled ``fs.contains(name)``
and backends implement it with their listing primitive.

Shared-storage operations can (and will) fail transiently; :func:`retrying`
is the "properly balanced retry loop" the paper requires, with exponential
backoff charged to the metrics object rather than wall-clock sleeps.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, TypeVar

from repro.errors import StorageError, TransientStorageError


@dataclass
class StorageMetrics:
    """Request/byte/latency/cost accounting for one backend instance."""

    get_requests: int = 0
    put_requests: int = 0
    list_requests: int = 0
    delete_requests: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    sim_seconds: float = 0.0
    dollars: float = 0.0
    transient_failures: int = 0
    retry_backoff_seconds: float = 0.0

    @property
    def total_requests(self) -> int:
        return (
            self.get_requests
            + self.put_requests
            + self.list_requests
            + self.delete_requests
        )

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0.0 if "seconds" in name or name == "dollars" else 0)


class Filesystem(abc.ABC):
    """Abstract UDFS backend."""

    def __init__(self) -> None:
        self.metrics = StorageMetrics()

    # -- required operations --------------------------------------------------

    @abc.abstractmethod
    def write(self, name: str, data: bytes) -> None:
        """Create object ``name`` with ``data``.

        Library code never overwrites: storage names are globally unique
        SIDs and files are immutable once written (section 5.1).  Backends
        may reject overwrites of existing objects.
        """

    @abc.abstractmethod
    def read(self, name: str) -> bytes:
        """Return the full contents of ``name``; ObjectNotFound if absent."""

    @abc.abstractmethod
    def list(self, prefix: str = "") -> List[str]:
        """All object names starting with ``prefix``, sorted."""

    @abc.abstractmethod
    def delete(self, name: str) -> None:
        """Remove ``name``; deleting a missing object is not an error
        (delete must be idempotent for crash-retry safety)."""

    @abc.abstractmethod
    def size(self, name: str) -> int:
        """Byte size of ``name``; ObjectNotFound if absent."""

    # -- derived operations ----------------------------------------------------

    def contains(self, name: str) -> bool:
        """Existence check via the list API (never HEAD — see module doc)."""
        return name in self.list(prefix=name)

    #: True when :meth:`read_coalesced` amortises the per-request cost over
    #: its members (one request, one latency charge).  The base fallback
    #: issues one request per member, so schedulers should only *plan*
    #: coalesced groups against backends that advertise support.
    supports_coalesced_get = False

    #: True while the backend is in a sustained outage window (every
    #: request raises :class:`~repro.errors.StorageUnavailable`).  Plain
    #: backends never are; fault-injecting backends override this, and
    #: decorators delegate it, so callers can probe reachability out of
    #: band without spending a request.
    outage_active = False

    def read_coalesced(self, names: List[str]) -> Dict[str, bytes]:
        """Fetch several objects as one logical request.

        Backend-amortised where supported (the simulated S3 charges one
        GET for the whole group — the paper's "larger request sizes"
        tuning, section 5.3); the default is a plain per-object loop so
        every backend accepts the same call.
        """
        return {name: self.read(name) for name in names}

    # -- optional POSIX features (section 5: S3 lacks these) -------------------

    def rename(self, old: str, new: str) -> None:
        raise StorageError(f"{type(self).__name__} does not support rename")

    def append(self, name: str, data: bytes) -> None:
        raise StorageError(f"{type(self).__name__} does not support append")

    # -- optional server-side compute (S3-Select-style pushdown) ---------------

    #: True when the backend can filter/project/partially-aggregate stored
    #: containers server-side via :meth:`select_scan`.  The scan layer only
    #: *plans* pushdown against backends that advertise support.
    supports_select = False

    def select_scan(self, name: str, columns=None, predicate=None, aggregates=None):
        raise StorageError(f"{type(self).__name__} does not support select_scan")

    # -- cost estimation (used by the engine's cost model) ---------------------

    def estimate_read_seconds(self, nbytes: int) -> float:
        return 0.0

    def estimate_write_seconds(self, nbytes: int) -> float:
        return 0.0

    def estimate_select_seconds(self, scanned_bytes: int, returned_bytes: int) -> float:
        # Backends without server-side compute make pushdown unpayable.
        return float("inf")


T = TypeVar("T")

#: Default retry schedule: attempts and the base backoff (simulated seconds).
DEFAULT_MAX_ATTEMPTS = 5
DEFAULT_BACKOFF = 0.05


def retrying(
    operation: Callable[[], T],
    metrics: StorageMetrics | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    base_backoff: float = DEFAULT_BACKOFF,
) -> T:
    """Run ``operation`` with exponential backoff on transient failures.

    Non-transient :class:`StorageError` propagates immediately (queries must
    stay cancellable; only throttling/internal errors are retried).
    """
    attempt = 0
    while True:
        try:
            return operation()
        except TransientStorageError:
            attempt += 1
            if metrics is not None:
                metrics.transient_failures += 1
            if attempt >= max_attempts:
                raise
            if metrics is not None:
                metrics.retry_backoff_seconds += base_backoff * (2 ** (attempt - 1))


class RetryingFilesystem(Filesystem):
    """Decorator applying the retry loop to every operation of a backend.

    Catalog sync, cluster_info writes, and revive downloads run through
    this wrapper so transient S3 failures cannot break the durability
    pipeline (section 5.3's "properly balanced retry loop").
    """

    def __init__(self, base: Filesystem, max_attempts: int = DEFAULT_MAX_ATTEMPTS):
        super().__init__()
        self._base = base
        self._max_attempts = max_attempts
        self.metrics = base.metrics

    def _retry(self, operation):
        return retrying(operation, self.metrics, max_attempts=self._max_attempts)

    def write(self, name: str, data: bytes) -> None:
        self._retry(lambda: self._base.write(name, data))

    def read(self, name: str) -> bytes:
        return self._retry(lambda: self._base.read(name))

    def list(self, prefix: str = "") -> List[str]:
        return self._retry(lambda: self._base.list(prefix))

    def delete(self, name: str) -> None:
        self._retry(lambda: self._base.delete(name))

    def size(self, name: str) -> int:
        return self._retry(lambda: self._base.size(name))

    def rename(self, old: str, new: str) -> None:
        self._retry(lambda: self._base.rename(old, new))

    def append(self, name: str, data: bytes) -> None:
        self._retry(lambda: self._base.append(name, data))

    @property
    def supports_coalesced_get(self) -> bool:
        return self._base.supports_coalesced_get

    @property
    def outage_active(self) -> bool:
        return self._base.outage_active

    def read_coalesced(self, names: List[str]) -> Dict[str, bytes]:
        return self._retry(lambda: self._base.read_coalesced(names))

    @property
    def supports_select(self) -> bool:
        return self._base.supports_select

    def select_scan(self, name: str, columns=None, predicate=None, aggregates=None):
        return self._retry(
            lambda: self._base.select_scan(name, columns, predicate, aggregates)
        )

    def estimate_read_seconds(self, nbytes: int) -> float:
        return self._base.estimate_read_seconds(nbytes)

    def estimate_write_seconds(self, nbytes: int) -> float:
        return self._base.estimate_write_seconds(nbytes)

    def estimate_select_seconds(self, scanned_bytes: int, returned_bytes: int) -> float:
        return self._base.estimate_select_seconds(scanned_bytes, returned_bytes)


class PrefixView(Filesystem):
    """A namespaced view over another filesystem.

    Used to give each database (and each incarnation) its own region of the
    shared-storage namespace without copying data.
    """

    def __init__(self, base: Filesystem, prefix: str):
        super().__init__()
        self._base = base
        self._prefix = prefix
        self.metrics = base.metrics  # share accounting with the base store

    def _full(self, name: str) -> str:
        return self._prefix + name

    def write(self, name: str, data: bytes) -> None:
        self._base.write(self._full(name), data)

    def read(self, name: str) -> bytes:
        return self._base.read(self._full(name))

    def list(self, prefix: str = "") -> List[str]:
        plen = len(self._prefix)
        return [n[plen:] for n in self._base.list(self._full(prefix))]

    def delete(self, name: str) -> None:
        self._base.delete(self._full(name))

    def size(self, name: str) -> int:
        return self._base.size(self._full(name))

    def rename(self, old: str, new: str) -> None:
        self._base.rename(self._full(old), self._full(new))

    def append(self, name: str, data: bytes) -> None:
        self._base.append(self._full(name), data)

    @property
    def supports_coalesced_get(self) -> bool:
        return self._base.supports_coalesced_get

    @property
    def outage_active(self) -> bool:
        return self._base.outage_active

    def read_coalesced(self, names: List[str]) -> Dict[str, bytes]:
        plen = len(self._prefix)
        raw = self._base.read_coalesced([self._full(n) for n in names])
        return {full[plen:]: data for full, data in raw.items()}

    @property
    def supports_select(self) -> bool:
        return self._base.supports_select

    def select_scan(self, name: str, columns=None, predicate=None, aggregates=None):
        return self._base.select_scan(self._full(name), columns, predicate, aggregates)

    def estimate_read_seconds(self, nbytes: int) -> float:
        return self._base.estimate_read_seconds(nbytes)

    def estimate_write_seconds(self, nbytes: int) -> float:
        return self._base.estimate_write_seconds(nbytes)

    def estimate_select_seconds(self, scanned_bytes: int, returned_bytes: int) -> float:
        return self._base.estimate_select_seconds(scanned_bytes, returned_bytes)

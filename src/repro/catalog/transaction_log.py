"""Redo log records, checkpoints, and their persistence.

Section 2.4: "Transaction commit results in transaction logs appended to a
redo log.  Transaction logs contain only metadata as the data files are
written prior to commit. ... When the total transaction log size exceeds a
threshold, the catalog writes out a checkpoint which reflects the current
state of all objects. ... Vertica retains two checkpoints, any prior
checkpoints and transaction logs can be deleted.  At startup time, the
catalog reads the most recent valid checkpoint, then applies any subsequent
transaction logs."

Records and checkpoints serialise to JSON and are stored through the UDFS
API, so the same code persists to node-local disk and uploads to shared
storage (where names gain an incarnation qualifier — section 3.5).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.catalog.mvcc import CatalogState, Op, container_to_json, container_from_json, dv_to_json, dv_from_json
from repro.catalog.objects import LiveAggregateProjection, Projection, Table, User
from repro.errors import CatalogError, ObjectNotFound
from repro.shared_storage.api import Filesystem

LOG_PREFIX = "txn_"
CHECKPOINT_PREFIX = "ckpt_"


def log_name(version: int) -> str:
    return f"{LOG_PREFIX}{version:012d}"


def checkpoint_name(version: int) -> str:
    return f"{CHECKPOINT_PREFIX}{version:012d}"


def version_of(name: str) -> int:
    return int(name.rsplit("_", 1)[1])


@dataclass(frozen=True)
class LogRecord:
    """One committed transaction: the version it produced and its ops."""

    version: int
    ops: Tuple[Op, ...]
    epoch: int = 0  # commit timestamp in simulated seconds, informational

    def to_bytes(self) -> bytes:
        return json.dumps(
            {"version": self.version, "ops": list(self.ops), "epoch": self.epoch}
        ).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "LogRecord":
        obj = json.loads(data)
        return cls(
            version=obj["version"], ops=tuple(obj["ops"]), epoch=obj.get("epoch", 0)
        )


@dataclass(frozen=True)
class Checkpoint:
    """Full catalog state at a version."""

    version: int
    payload: bytes

    @classmethod
    def of_state(cls, state: CatalogState) -> "Checkpoint":
        doc = {
            "version": state.version,
            "tables": [t.to_json() for t in state.tables.values()],
            "projections": [p.to_json() for p in state.projections.values()],
            "live_aggs": [l.to_json() for l in state.live_aggs.values()],
            "users": [u.to_json() for u in state.users.values()],
            "containers": [container_to_json(c) for c in state.containers.values()],
            "delete_vectors": [dv_to_json(d) for d in state.delete_vectors.values()],
            "properties": state.properties,
            "subscriptions": [
                {"node": n, "shard_id": s, "state": st}
                for (n, s), st in state.subscriptions.items()
            ],
        }
        return cls(version=state.version, payload=json.dumps(doc).encode("utf-8"))

    def restore(self) -> CatalogState:
        doc = json.loads(self.payload)
        state = CatalogState()
        state.version = doc["version"]
        for t in doc["tables"]:
            table = Table.from_json(t)
            state.tables[table.name] = table
        for p in doc["projections"]:
            proj = Projection.from_json(p)
            state.projections[proj.name] = proj
        for l in doc["live_aggs"]:
            lap = LiveAggregateProjection.from_json(l)
            state.live_aggs[lap.name] = lap
        for u in doc["users"]:
            user = User.from_json(u)
            state.users[user.name] = user
        for c in doc["containers"]:
            cont = container_from_json(c)
            state.containers[str(cont.sid)] = cont
        for d in doc["delete_vectors"]:
            dv = dv_from_json(d)
            state.delete_vectors[str(dv.sid)] = dv
        state.properties = dict(doc.get("properties", {}))
        for s in doc.get("subscriptions", []):
            state.subscriptions[(s["node"], s["shard_id"])] = s["state"]
        return state


class LogStore:
    """Persistence of the redo log and checkpoints through a UDFS backend."""

    def __init__(self, fs: Filesystem):
        self.fs = fs

    # -- writes ----------------------------------------------------------------

    def append(self, record: LogRecord) -> None:
        self.fs.write(log_name(record.version), record.to_bytes())

    def write_checkpoint(self, checkpoint: Checkpoint) -> None:
        self.fs.write(checkpoint_name(checkpoint.version), checkpoint.payload)

    # -- reads -----------------------------------------------------------------

    def checkpoint_versions(self) -> List[int]:
        return sorted(version_of(n) for n in self.fs.list(CHECKPOINT_PREFIX))

    def log_versions(self) -> List[int]:
        return sorted(version_of(n) for n in self.fs.list(LOG_PREFIX))

    def read_record(self, version: int) -> LogRecord:
        return LogRecord.from_bytes(self.fs.read(log_name(version)))

    def read_checkpoint(self, version: int) -> Checkpoint:
        return Checkpoint(version, self.fs.read(checkpoint_name(version)))

    def load_latest(self) -> Tuple[Optional[CatalogState], List[LogRecord]]:
        """Startup recovery: newest valid checkpoint + subsequent records.

        Returns ``(state_or_None, records_after_state)``.  A checkpoint
        that fails to parse is treated as invalid and the next older one is
        tried, matching "reads the most recent valid checkpoint".
        """
        base_state: Optional[CatalogState] = None
        base_version = 0
        for version in reversed(self.checkpoint_versions()):
            try:
                base_state = self.read_checkpoint(version).restore()
                base_version = version
                break
            except (ValueError, KeyError, ObjectNotFound):
                continue
        records = []
        for version in self.log_versions():
            if version > base_version:
                try:
                    records.append(self.read_record(version))
                except ObjectNotFound:  # concurrent cleanup
                    continue
        return base_state, records

    # -- retention ----------------------------------------------------------------

    def prune(self, keep_checkpoints: int = 2, floor_version: Optional[int] = None) -> int:
        """Delete superseded checkpoints and the logs they cover.

        Retains the newest ``keep_checkpoints`` checkpoints and every log
        record newer than the oldest retained checkpoint.  ``floor_version``
        (the truncation version of section 3.5) blocks deletion of anything
        at or after it: "deleting checkpoints and transaction logs after the
        truncation version is not allowed".  Returns objects deleted.
        """
        checkpoints = self.checkpoint_versions()
        if len(checkpoints) <= keep_checkpoints:
            return 0
        retained = set(checkpoints[-keep_checkpoints:])
        if floor_version is not None:
            # Revive must be able to reconstruct the truncation version, so
            # also keep the newest checkpoint at or below the floor.
            base = [v for v in checkpoints if v <= floor_version]
            if base:
                retained.add(max(base))
        min_retained = min(retained)
        deleted = 0
        for version in checkpoints:
            if version in retained:
                continue
            if floor_version is not None and version >= floor_version:
                continue
            self.fs.delete(checkpoint_name(version))
            deleted += 1
        for version in self.log_versions():
            # Logs newer than the oldest retained checkpoint are needed to
            # roll forward from it; older ones are covered by it.
            if version > min_retained:
                continue
            if floor_version is not None and version >= floor_version:
                continue
            self.fs.delete(log_name(version))
            deleted += 1
        return deleted

"""Catalog: metadata objects, MVCC state, redo log + checkpoints, OCC.

Section 2.4 of the paper: Vertica's catalog keeps all metadata in memory
under multi-version concurrency control, appends transaction logs to a redo
log at commit, periodically writes checkpoints labelled with the version
counter, and retains two checkpoints.  Section 3.1 splits the catalog into
*global* objects (tables, projections, users — on every node) and *storage*
objects (containers, delete vectors — only on nodes subscribed to the
owning shard).  Section 6.3 adds optimistic concurrency control with
commit-time write-set validation.
"""

from repro.catalog.catalog import Catalog, CatalogSnapshot
from repro.catalog.objects import (
    LiveAggregateProjection,
    Projection,
    Segmentation,
    Table,
    User,
)
from repro.catalog.occ import WriteSet
from repro.catalog.transaction_log import Checkpoint, LogRecord

__all__ = [
    "Catalog",
    "CatalogSnapshot",
    "Table",
    "Projection",
    "LiveAggregateProjection",
    "Segmentation",
    "User",
    "WriteSet",
    "Checkpoint",
    "LogRecord",
]

"""The per-node catalog: MVCC states, redo log, checkpoints, upload sync.

Every node runs one :class:`Catalog`.  It holds the current materialised
:class:`CatalogState`, hands out pinned snapshots to running queries,
applies committed transactions (filtered to the node's subscribed shards),
appends each commit to the node-local redo log, checkpoints when the log
grows, and uploads logs/checkpoints to shared storage asynchronously —
yielding the node's *sync interval* used by the consensus truncation
version computation of section 3.5.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.catalog.mvcc import CatalogState, Op
from repro.catalog.occ import ObjectVersions, WriteSet
from repro.catalog.transaction_log import (
    Checkpoint,
    LogRecord,
    LogStore,
    log_name,
)
from repro.errors import CatalogError
from repro.shared_storage.api import Filesystem


class CatalogSnapshot:
    """A pinned, immutable view of the catalog at one version."""

    def __init__(self, catalog: "Catalog", state: CatalogState):
        self._catalog = catalog
        self.state = state
        self.version = state.version
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._catalog._unpin(self.version)

    def __enter__(self) -> "CatalogSnapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class Catalog:
    """Node-local catalog instance."""

    def __init__(
        self,
        local_fs: Filesystem,
        subscribed_shards: Optional[Set[int]] = None,
        checkpoint_every: int = 64,
    ):
        self.log_store = LogStore(local_fs)
        self.state = CatalogState()
        self.versions = ObjectVersions()
        self.checkpoint_every = checkpoint_every
        #: None = apply every shard's metadata (e.g. Enterprise / full node)
        self.subscribed_shards = subscribed_shards
        self.truncation_floor: Optional[int] = None
        self._pins: Dict[int, int] = {}  # version -> pin count
        self._recent: Dict[int, CatalogState] = {0: self.state}
        self._commits_since_checkpoint = 0
        self._last_uploaded = 0

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> CatalogSnapshot:
        version = self.state.version
        self._pins[version] = self._pins.get(version, 0) + 1
        self._recent.setdefault(version, self.state)
        return CatalogSnapshot(self, self.state)

    def _unpin(self, version: int) -> None:
        count = self._pins.get(version, 0) - 1
        if count <= 0:
            self._pins.pop(version, None)
        else:
            self._pins[version] = count
        self._gc_states()

    def pinned_versions(self) -> List[int]:
        """Versions running queries hold pins on (invariant accessor)."""
        return sorted(self._pins)

    def pinned_states(self) -> List[CatalogState]:
        """The retained catalog states behind each pinned version.

        The simulation harness checks that *every* state a query could
        still read from — not just the newest — references only storage
        objects that exist on shared storage.
        """
        return [
            self._recent[version]
            for version in sorted(self._pins)
            if version in self._recent
        ]

    def min_pinned_version(self) -> int:
        """Oldest catalog version any running query references.

        Section 6.5 gossips this value across the cluster to decide when a
        dropped file can no longer be referenced by any query.
        """
        if self._pins:
            return min(self._pins)
        return self.state.version

    def _gc_states(self) -> None:
        keep = set(self._pins)
        keep.add(self.state.version)
        for version in list(self._recent):
            if version not in keep:
                del self._recent[version]

    # -- commit application ---------------------------------------------------------

    def apply_commit(self, record: LogRecord, persist: bool = True) -> None:
        """Apply one committed transaction to this node's catalog."""
        if record.version != self.state.version + 1:
            raise CatalogError(
                f"commit version {record.version} does not follow "
                f"{self.state.version}"
            )
        new_state = self.state.copy()
        new_state.apply_all(list(record.ops), self.subscribed_shards)
        new_state.version = record.version
        self.state = new_state
        self._recent[new_state.version] = new_state
        self.versions.note_commit(record.version, list(record.ops))
        self._gc_states()
        if persist:
            self.log_store.append(record)
            self._commits_since_checkpoint += 1
            if self._commits_since_checkpoint >= self.checkpoint_every:
                self.write_checkpoint()

    def validate_write_set(self, write_set: WriteSet) -> None:
        write_set.validate(self.versions)

    # -- checkpointing ----------------------------------------------------------------

    def write_checkpoint(self) -> None:
        self.log_store.write_checkpoint(Checkpoint.of_state(self.state))
        self._commits_since_checkpoint = 0
        self.log_store.prune(keep_checkpoints=2, floor_version=self.truncation_floor)

    # -- startup recovery ----------------------------------------------------------------

    def recover(self) -> int:
        """Rebuild state from the local log store; returns versions replayed.

        "At startup time, the catalog reads the most recent valid
        checkpoint, then applies any subsequent transaction logs to arrive
        at the most up to date catalog state." (section 2.4)
        """
        base, records = self.log_store.load_latest()
        state = base if base is not None else CatalogState()
        replayed = 0
        for record in records:
            if record.version != state.version + 1:
                # A gap means the tail is incomplete; stop at the last
                # contiguous version (later commits were lost).
                break
            next_state = state if replayed else state.copy()
            next_state.apply_all(list(record.ops), self.subscribed_shards)
            next_state.version = record.version
            state = next_state
            self.versions.note_commit(record.version, list(record.ops))
            replayed += 1
        self.state = state
        self._recent = {state.version: state}
        return replayed

    # -- truncation (revive support) ----------------------------------------------------

    def truncate_to(self, version: int) -> None:
        """Discard all commits after ``version`` and re-checkpoint.

        Used by revive (section 3.5): "Each node reads its catalog,
        truncates all commits subsequent to the truncation version, and
        writes a new checkpoint."
        """
        if version > self.state.version:
            raise CatalogError(
                f"cannot truncate forward (at {self.state.version}, "
                f"requested {version})"
            )
        if version == self.state.version:
            self.write_checkpoint()
            return
        # Rebuild from scratch up to `version`.
        base, records = self.log_store.load_latest()
        state = base if base is not None else CatalogState()
        if state.version > version:
            # The newest checkpoint is beyond the truncation point; rebuild
            # from older material if available, else replay everything.
            state = CatalogState()
            for ckpt_version in reversed(self.log_store.checkpoint_versions()):
                if ckpt_version <= version:
                    state = self.log_store.read_checkpoint(ckpt_version).restore()
                    break
            records = [
                self.log_store.read_record(v)
                for v in self.log_store.log_versions()
                if state.version < v <= version
            ]
        for record in records:
            if record.version > version:
                break
            if record.version != state.version + 1:
                raise CatalogError(
                    f"log gap at {record.version} while truncating to {version}"
                )
            state = state.copy()
            state.apply_all(list(record.ops), self.subscribed_shards)
            state.version = record.version
        if state.version != version:
            raise CatalogError(
                f"could not reconstruct version {version} (reached {state.version})"
            )
        # Remove newer log records and checkpoints — they are discarded
        # transactions now.
        for v in self.log_store.log_versions():
            if v > version:
                self.log_store.fs.delete(log_name(v))
        from repro.catalog.transaction_log import checkpoint_name

        for v in self.log_store.checkpoint_versions():
            if v > version:
                self.log_store.fs.delete(checkpoint_name(v))
        self.state = state
        self._recent = {state.version: state}
        self._pins.clear()
        self.write_checkpoint()

    # -- shared-storage sync --------------------------------------------------------------

    def sync_to(self, shared: LogStore, include_checkpoint: bool = False) -> Tuple[int, int]:
        """Upload new log records (and optionally a checkpoint) to shared
        storage; returns the resulting revivable sync interval.

        "Each node writes transaction logs to local storage, then
        independently uploads them to shared storage on a regular,
        configurable interval." (section 3.5)
        """
        local_versions = self.log_store.log_versions()
        already = set(shared.log_versions())
        for version in local_versions:
            if version > self._last_uploaded and version not in already:
                shared.append(self.log_store.read_record(version))
        if local_versions:
            self._last_uploaded = max(self._last_uploaded, max(local_versions))
        if include_checkpoint or not shared.checkpoint_versions():
            existing = shared.checkpoint_versions()
            if self.state.version not in existing:
                shared.write_checkpoint(Checkpoint.of_state(self.state))
        return revivable_interval(shared)


def revivable_interval(store: LogStore) -> Tuple[int, int]:
    """The range of versions a node could revive to from ``store``.

    Lower bound: oldest uploaded checkpoint.  Upper bound: newest version V
    such that some checkpoint cv <= V exists and logs (cv, V] are all
    present.  Deleting stale checkpoints raises the lower bound; uploading
    transactions raises the upper bound (section 3.5).
    """
    checkpoints = store.checkpoint_versions()
    if not checkpoints:
        return (0, 0)
    low = checkpoints[0]
    newest = checkpoints[-1]
    logs = set(store.log_versions())
    high = newest
    while high + 1 in logs:
        high += 1
    return (low, high)

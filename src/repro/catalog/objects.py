"""Catalog object model: tables, projections, users.

Projections (section 2.1) are the only physical data structure in Vertica:
sorted, possibly column-subset, possibly denormalised copies of a table.
Each projection is either *segmented* by a hash of some columns —
distributing tuples across shards (Eon) or nodes (Enterprise) — or
*replicated* in full everywhere.  Enterprise additionally derives a "buddy"
projection by rotating the node ring (section 2.2); Eon replaces buddies
with multi-subscriber shards.

Live aggregate projections (section 2.1) maintain pre-computed partial
aggregates keyed by group columns, traded against update restrictions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.types import ColumnType, SchemaColumn, TableSchema


class SegmentationKind(enum.Enum):
    SEGMENTED = "segmented"
    REPLICATED = "replicated"


@dataclass(frozen=True)
class Segmentation:
    """``SEGMENTED BY HASH(columns)`` or ``UNSEGMENTED`` (replicated)."""

    kind: SegmentationKind
    columns: Tuple[str, ...] = ()

    @classmethod
    def by_hash(cls, *columns: str) -> "Segmentation":
        if not columns:
            raise ValueError("segmentation requires at least one column")
        return cls(SegmentationKind.SEGMENTED, tuple(columns))

    @classmethod
    def replicated(cls) -> "Segmentation":
        return cls(SegmentationKind.REPLICATED)

    @property
    def is_replicated(self) -> bool:
        return self.kind is SegmentationKind.REPLICATED

    def to_json(self) -> dict:
        return {"kind": self.kind.value, "columns": list(self.columns)}

    @classmethod
    def from_json(cls, obj: dict) -> "Segmentation":
        return cls(SegmentationKind(obj["kind"]), tuple(obj["columns"]))


@dataclass(frozen=True)
class Projection:
    """A sorted, distributed physical copy of (a subset of) a table."""

    name: str
    anchor_table: str
    columns: Tuple[str, ...]
    sort_order: Tuple[str, ...]
    segmentation: Segmentation
    is_buddy: bool = False
    buddy_of: Optional[str] = None

    def __post_init__(self) -> None:
        missing = [c for c in self.sort_order if c not in self.columns]
        if missing:
            raise ValueError(f"sort columns {missing} not in projection columns")
        if not self.segmentation.is_replicated:
            missing = [
                c for c in self.segmentation.columns if c not in self.columns
            ]
            if missing:
                raise ValueError(
                    f"segmentation columns {missing} not in projection columns"
                )

    def schema(self, table_schema: TableSchema) -> TableSchema:
        return table_schema.subset(self.columns)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "anchor_table": self.anchor_table,
            "columns": list(self.columns),
            "sort_order": list(self.sort_order),
            "segmentation": self.segmentation.to_json(),
            "is_buddy": self.is_buddy,
            "buddy_of": self.buddy_of,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "Projection":
        return cls(
            name=obj["name"],
            anchor_table=obj["anchor_table"],
            columns=tuple(obj["columns"]),
            sort_order=tuple(obj["sort_order"]),
            segmentation=Segmentation.from_json(obj["segmentation"]),
            is_buddy=obj.get("is_buddy", False),
            buddy_of=obj.get("buddy_of"),
        )

    def make_buddy(self) -> "Projection":
        """Derive the Enterprise-mode buddy projection (rotated ring)."""
        return replace(
            self, name=self.name + "_b1", is_buddy=True, buddy_of=self.name
        )


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate column of a live aggregate projection."""

    func: str  # sum | count | min | max
    argument: Optional[str]  # None for count(*)
    output_name: str

    def to_json(self) -> dict:
        return {"func": self.func, "argument": self.argument, "output_name": self.output_name}

    @classmethod
    def from_json(cls, obj: dict) -> "AggregateSpec":
        return cls(obj["func"], obj["argument"], obj["output_name"])


@dataclass(frozen=True)
class LiveAggregateProjection:
    """Pre-computed partial aggregates over an anchor table (section 2.1)."""

    name: str
    anchor_table: str
    group_by: Tuple[str, ...]
    aggregates: Tuple[AggregateSpec, ...]
    segmentation: Segmentation

    def __post_init__(self) -> None:
        if not self.group_by:
            raise ValueError("live aggregate projection needs group-by columns")
        if not self.aggregates:
            raise ValueError("live aggregate projection needs aggregates")

    def output_schema(self, table_schema: TableSchema) -> TableSchema:
        cols: List[SchemaColumn] = [table_schema.column(g) for g in self.group_by]
        for agg in self.aggregates:
            if agg.func == "count":
                cols.append(SchemaColumn(agg.output_name, ColumnType.INT))
            elif agg.func in ("min", "max") and agg.argument is not None:
                cols.append(
                    SchemaColumn(
                        agg.output_name, table_schema.column(agg.argument).ctype
                    )
                )
            else:
                base = (
                    table_schema.column(agg.argument).ctype
                    if agg.argument is not None
                    else ColumnType.INT
                )
                out = ColumnType.FLOAT if base is ColumnType.FLOAT else ColumnType.INT
                cols.append(SchemaColumn(agg.output_name, out))
        return TableSchema(cols)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "anchor_table": self.anchor_table,
            "group_by": list(self.group_by),
            "aggregates": [a.to_json() for a in self.aggregates],
            "segmentation": self.segmentation.to_json(),
        }

    @classmethod
    def from_json(cls, obj: dict) -> "LiveAggregateProjection":
        return cls(
            name=obj["name"],
            anchor_table=obj["anchor_table"],
            group_by=tuple(obj["group_by"]),
            aggregates=tuple(AggregateSpec.from_json(a) for a in obj["aggregates"]),
            segmentation=Segmentation.from_json(obj["segmentation"]),
        )


@dataclass(frozen=True)
class FlattenedColumn:
    """A denormalised column filled by a join at load time (section 2.1).

    ``output`` in this table is looked up from ``source_table`` by joining
    this table's ``fact_key`` against the source's ``source_key`` and
    taking ``source_column``.  The refresh mechanism re-derives the values
    when the dimension changes.
    """

    output: str
    source_table: str
    source_key: str
    fact_key: str
    source_column: str

    def to_json(self) -> dict:
        return {
            "output": self.output,
            "source_table": self.source_table,
            "source_key": self.source_key,
            "fact_key": self.fact_key,
            "source_column": self.source_column,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "FlattenedColumn":
        return cls(
            obj["output"], obj["source_table"], obj["source_key"],
            obj["fact_key"], obj["source_column"],
        )


@dataclass(frozen=True)
class Table:
    """A logical table: schema plus optional intra-node partition column.

    ``partition_by`` names a column (usually time-derived); containers then
    hold data from a single partition key, enabling file pruning when query
    predicates align with the partition expression (section 2.1).
    ``flattened`` lists columns denormalised from other tables at load
    time (Flattened Tables, section 2.1).
    """

    name: str
    schema: TableSchema
    partition_by: Optional[str] = None
    projections: Tuple[str, ...] = ()
    flattened: Tuple[FlattenedColumn, ...] = ()

    def __post_init__(self) -> None:
        if self.partition_by is not None and self.partition_by not in self.schema:
            raise ValueError(
                f"partition column {self.partition_by!r} not in table schema"
            )
        for spec in self.flattened:
            if spec.output not in self.schema:
                raise ValueError(
                    f"flattened column {spec.output!r} not in table schema"
                )
            if spec.fact_key not in self.schema:
                raise ValueError(
                    f"flattened fact key {spec.fact_key!r} not in table schema"
                )

    @property
    def base_columns(self) -> List[str]:
        """Columns a COPY must supply (everything except flattened ones)."""
        derived = {spec.output for spec in self.flattened}
        return [c.name for c in self.schema.columns if c.name not in derived]

    def with_projection(self, projection_name: str) -> "Table":
        if projection_name in self.projections:
            return self
        return replace(self, projections=self.projections + (projection_name,))

    def without_projection(self, projection_name: str) -> "Table":
        return replace(
            self,
            projections=tuple(p for p in self.projections if p != projection_name),
        )

    def with_column(self, column: SchemaColumn) -> "Table":
        return replace(
            self, schema=TableSchema(self.schema.columns + [column])
        )

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "columns": [
                {"name": c.name, "type": c.ctype.value, "nullable": c.nullable}
                for c in self.schema.columns
            ],
            "partition_by": self.partition_by,
            "projections": list(self.projections),
            "flattened": [f.to_json() for f in self.flattened],
        }

    @classmethod
    def from_json(cls, obj: dict) -> "Table":
        schema = TableSchema(
            [
                SchemaColumn(c["name"], ColumnType(c["type"]), c.get("nullable", True))
                for c in obj["columns"]
            ]
        )
        return cls(
            name=obj["name"],
            schema=schema,
            partition_by=obj.get("partition_by"),
            projections=tuple(obj.get("projections", ())),
            flattened=tuple(
                FlattenedColumn.from_json(f) for f in obj.get("flattened", ())
            ),
        )


@dataclass(frozen=True)
class User:
    """A database user — a representative global (non-storage) object."""

    name: str
    is_superuser: bool = False

    def to_json(self) -> dict:
        return {"name": self.name, "is_superuser": self.is_superuser}

    @classmethod
    def from_json(cls, obj: dict) -> "User":
        return cls(obj["name"], obj.get("is_superuser", False))

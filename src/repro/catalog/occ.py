"""Optimistic concurrency control for global catalog objects.

Section 6.3: holding the global catalog lock while generating ROS
containers (e.g. during ADD COLUMN) caused contention, so Eon moves to
OCC: "Modifications to metadata happen offline and up front without
requiring a global catalog lock.  Throughout the transaction, a write set
is maintained that keeps track of all the global catalog objects that have
been modified. ... Only then is the global catalog lock acquired and the
write set is validated.  The validation happens by comparing the version
tracked in the write set with the latest version of the object.  If the
versions match the validation succeeds and the transaction commits,
otherwise it rolls back."

Object versions here are the catalog version at which the object was last
modified; :class:`ObjectVersions` maintains that index as commits apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.catalog.mvcc import Op
from repro.errors import OCCConflict

#: Catalog object key: (kind, name), e.g. ("table", "sales").
ObjectKey = Tuple[str, str]


def keys_touched(op: Op) -> List[ObjectKey]:
    """The global-object keys an op reads/modifies, for write-set tracking.

    Storage ops (containers, delete vectors) touch their anchor objects:
    adding a container to a projection conflicts with dropping that
    projection, so the container op records the projection key.
    """
    kind = op["op"]
    if kind == "create_table":
        return [("table", op["table"]["name"])]  # type: ignore[index]
    if kind in ("drop_table", "add_column"):
        return [("table", op.get("name") or op.get("table"))]  # type: ignore[list-item]
    if kind == "create_projection":
        proj = op["projection"]  # type: ignore[assignment]
        return [("projection", proj["name"]), ("table", proj["anchor_table"])]
    if kind == "drop_projection":
        return [("projection", op["name"])]  # type: ignore[list-item]
    if kind == "create_live_agg":
        lap = op["lap"]  # type: ignore[assignment]
        return [("live_agg", lap["name"]), ("table", lap["anchor_table"])]
    if kind == "create_user":
        return [("user", op["user"]["name"])]  # type: ignore[index]
    if kind == "add_container":
        return [("projection", op["container"]["projection"])]  # type: ignore[index]
    if kind == "add_delete_vector":
        return [("projection", op["dv"]["projection"])]  # type: ignore[index]
    if kind in ("drop_container", "drop_delete_vector"):
        return []
    if kind == "set_property":
        return [("property", str(op["key"]))]
    if kind in ("set_subscription", "drop_subscription"):
        return [("subscription", f"{op['node']}:{op['shard_id']}")]
    return []


class ObjectVersions:
    """Index: object key -> catalog version of its last modification."""

    def __init__(self) -> None:
        self._versions: Dict[ObjectKey, int] = {}

    def version_of(self, key: ObjectKey) -> int:
        return self._versions.get(key, 0)

    def note_commit(self, version: int, ops: List[Op]) -> None:
        for op in ops:
            for key in keys_touched(op):
                self._versions[key] = version


@dataclass
class WriteSet:
    """Per-transaction record of object versions observed at read time."""

    observed: Dict[ObjectKey, int] = field(default_factory=dict)

    def record(self, key: ObjectKey, version: int) -> None:
        # First observation wins: validation must compare against the
        # version seen when the transaction first read the object.
        self.observed.setdefault(key, version)

    def record_ops(self, ops: List[Op], index: ObjectVersions) -> None:
        for op in ops:
            for key in keys_touched(op):
                self.record(key, index.version_of(key))

    def validate(self, index: ObjectVersions) -> None:
        """Raise :class:`OCCConflict` if any observed object moved on."""
        for key, seen in self.observed.items():
            latest = index.version_of(key)
            if latest != seen:
                raise OCCConflict(
                    f"write-set conflict on {key}: observed version {seen}, "
                    f"latest {latest}"
                )

"""Catalog state under multi-version concurrency control.

The in-memory catalog "uses a multi-version concurrency control mechanism,
exposing consistent snapshots to database read operations and copy-on-write
semantics for write operations" (section 2.4).

:class:`CatalogState` is the materialised catalog at one version.  Commits
never mutate a state in place: :meth:`CatalogState.copy` produces a
shallow-copied successor and the transaction's operations are applied to
the copy, so any snapshot handed to a running query stays frozen.

Catalog mutations are *operations*: small JSON-serialisable dicts with an
``op`` tag and an optional ``shard`` association.  The same op stream
drives commit application, redo-log replay, checkpoint restore, and the
shard-scoped metadata distribution of section 3.2 (a node only applies ops
for shards it subscribes to, plus all global ops).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.catalog.objects import (
    LiveAggregateProjection,
    Projection,
    Table,
    User,
)
from repro.common.oid import StorageId
from repro.common.types import ColumnType, SchemaColumn
from repro.errors import CatalogError
from repro.storage.container import ROSContainer
from repro.storage.delete_vector import DeleteVector

Op = Dict[str, object]


# ---------------------------------------------------------------------------
# storage-object (de)serialisation


def container_to_json(c: ROSContainer) -> dict:
    return {
        "sid": str(c.sid),
        "projection": c.projection,
        "shard_id": c.shard_id,
        "row_count": c.row_count,
        "size_bytes": c.size_bytes,
        "min_values": [list(p) for p in c.min_values],
        "max_values": [list(p) for p in c.max_values],
        "partition_key": c.partition_key,
        "creation_version": c.creation_version,
    }


def container_from_json(obj: dict) -> ROSContainer:
    return ROSContainer(
        sid=StorageId.parse(obj["sid"]),
        projection=obj["projection"],
        shard_id=obj["shard_id"],
        row_count=obj["row_count"],
        size_bytes=obj["size_bytes"],
        min_values=tuple((k, v) for k, v in obj["min_values"]),
        max_values=tuple((k, v) for k, v in obj["max_values"]),
        partition_key=obj.get("partition_key"),
        creation_version=obj.get("creation_version", 0),
    )


def dv_to_json(dv: DeleteVector) -> dict:
    return {
        "sid": str(dv.sid),
        "target_sid": str(dv.target_sid),
        "projection": dv.projection,
        "shard_id": dv.shard_id,
        "deleted_count": dv.deleted_count,
        "size_bytes": dv.size_bytes,
        "creation_version": dv.creation_version,
    }


def dv_from_json(obj: dict) -> DeleteVector:
    return DeleteVector(
        sid=StorageId.parse(obj["sid"]),
        target_sid=StorageId.parse(obj["target_sid"]),
        projection=obj["projection"],
        shard_id=obj["shard_id"],
        deleted_count=obj["deleted_count"],
        size_bytes=obj["size_bytes"],
        creation_version=obj.get("creation_version", 0),
    )


# ---------------------------------------------------------------------------
# op constructors (the only way library code should build ops)


def op_create_table(table: Table) -> Op:
    return {"op": "create_table", "table": table.to_json()}


def op_drop_table(name: str) -> Op:
    return {"op": "drop_table", "name": name}


def op_add_column(table: str, column: SchemaColumn) -> Op:
    return {
        "op": "add_column",
        "table": table,
        "column": {"name": column.name, "type": column.ctype.value},
    }


def op_create_projection(projection: Projection) -> Op:
    return {"op": "create_projection", "projection": projection.to_json()}


def op_drop_projection(name: str) -> Op:
    return {"op": "drop_projection", "name": name}


def op_create_live_agg(lap: LiveAggregateProjection) -> Op:
    return {"op": "create_live_agg", "lap": lap.to_json()}


def op_create_user(user: User) -> Op:
    return {"op": "create_user", "user": user.to_json()}


def op_add_container(container: ROSContainer) -> Op:
    return {
        "op": "add_container",
        "shard": container.shard_id,
        "container": container_to_json(container),
    }


def op_drop_container(sid: str, shard_id: Optional[int]) -> Op:
    return {"op": "drop_container", "shard": shard_id, "sid": sid}


def op_add_delete_vector(dv: DeleteVector) -> Op:
    return {"op": "add_delete_vector", "shard": dv.shard_id, "dv": dv_to_json(dv)}


def op_drop_delete_vector(sid: str, shard_id: Optional[int]) -> Op:
    return {"op": "drop_delete_vector", "shard": shard_id, "sid": sid}


def op_set_property(key: str, value: object) -> Op:
    return {"op": "set_property", "key": key, "value": value}


def op_set_subscription(node: str, shard_id: int, state: str) -> Op:
    return {"op": "set_subscription", "node": node, "shard_id": shard_id, "state": state}


def op_drop_subscription(node: str, shard_id: int) -> Op:
    return {"op": "drop_subscription", "node": node, "shard_id": shard_id}


def op_shard_of(op: Op) -> Optional[int]:
    """The shard an op belongs to; None means global (all nodes apply it)."""
    return op.get("shard")  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# the state


class CatalogState:
    """Materialised catalog contents at a single version."""

    def __init__(self) -> None:
        self.version = 0
        self.tables: Dict[str, Table] = {}
        self.projections: Dict[str, Projection] = {}
        self.live_aggs: Dict[str, LiveAggregateProjection] = {}
        self.users: Dict[str, User] = {}
        self.containers: Dict[str, ROSContainer] = {}
        self.delete_vectors: Dict[str, DeleteVector] = {}
        #: free-form cluster properties (mergeout coordinators, ...)
        self.properties: Dict[str, object] = {}
        #: (node, shard_id) -> subscription state name
        self.subscriptions: Dict[tuple, str] = {}

    def copy(self) -> "CatalogState":
        new = CatalogState.__new__(CatalogState)
        new.version = self.version
        new.tables = dict(self.tables)
        new.projections = dict(self.projections)
        new.live_aggs = dict(self.live_aggs)
        new.users = dict(self.users)
        new.containers = dict(self.containers)
        new.delete_vectors = dict(self.delete_vectors)
        new.properties = dict(self.properties)
        new.subscriptions = dict(self.subscriptions)
        return new

    # -- lookups --------------------------------------------------------------

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def projection(self, name: str) -> Projection:
        try:
            return self.projections[name]
        except KeyError:
            raise CatalogError(f"no projection named {name!r}") from None

    def projections_of(self, table: str) -> List[Projection]:
        return [p for p in self.projections.values() if p.anchor_table == table]

    def live_aggs_of(self, table: str) -> List[LiveAggregateProjection]:
        return [l for l in self.live_aggs.values() if l.anchor_table == table]

    def containers_of(
        self, projection: str, shard_id: Optional[int] = None
    ) -> List[ROSContainer]:
        return [
            c
            for c in self.containers.values()
            if c.projection == projection
            and (shard_id is None or c.shard_id == shard_id)
        ]

    def delete_vectors_for(self, target_sid: str) -> List[DeleteVector]:
        return [
            d
            for d in self.delete_vectors.values()
            if str(d.target_sid) == target_sid
        ]

    def storage_sids(self) -> Set[str]:
        """Names of every storage object this state references."""
        sids = {str(c.sid) for c in self.containers.values()}
        sids |= {str(d.sid) for d in self.delete_vectors.values()}
        return sids

    # -- application ------------------------------------------------------------

    def apply(self, op: Op) -> None:
        try:
            handler = _HANDLERS[op["op"]]  # type: ignore[index]
        except KeyError:
            raise CatalogError(f"unknown catalog op: {op.get('op')!r}") from None
        handler(self, op)

    def apply_all(self, ops: List[Op], shard_filter: Optional[Set[int]] = None) -> None:
        """Apply ``ops``, skipping shard-scoped ops outside ``shard_filter``.

        ``shard_filter=None`` applies everything (a node subscribed to all
        shards, or log replay for a full catalog).
        """
        for op in ops:
            shard = op_shard_of(op)
            if shard is not None and shard_filter is not None and shard not in shard_filter:
                continue
            self.apply(op)


# -- op handlers -------------------------------------------------------------


def _h_create_table(state: CatalogState, op: Op) -> None:
    table = Table.from_json(op["table"])  # type: ignore[arg-type]
    if table.name in state.tables:
        raise CatalogError(f"table {table.name!r} already exists")
    state.tables[table.name] = table


def _h_drop_table(state: CatalogState, op: Op) -> None:
    name = op["name"]
    table = state.tables.pop(name, None)
    if table is None:
        raise CatalogError(f"no table named {name!r}")
    for proj in list(state.projections.values()):
        if proj.anchor_table == name:
            del state.projections[proj.name]
            for sid, c in list(state.containers.items()):
                if c.projection == proj.name:
                    del state.containers[sid]
            for sid, d in list(state.delete_vectors.items()):
                if d.projection == proj.name:
                    del state.delete_vectors[sid]
    for lap in list(state.live_aggs.values()):
        if lap.anchor_table == name:
            del state.live_aggs[lap.name]


def _h_add_column(state: CatalogState, op: Op) -> None:
    table = state.table(op["table"])  # type: ignore[arg-type]
    col = op["column"]  # type: ignore[assignment]
    new_col = SchemaColumn(col["name"], ColumnType(col["type"]))
    if new_col.name in table.schema:
        raise CatalogError(
            f"column {new_col.name!r} already exists in {table.name!r}"
        )
    state.tables[table.name] = table.with_column(new_col)


def _h_create_projection(state: CatalogState, op: Op) -> None:
    proj = Projection.from_json(op["projection"])  # type: ignore[arg-type]
    if proj.name in state.projections:
        raise CatalogError(f"projection {proj.name!r} already exists")
    table = state.table(proj.anchor_table)
    state.projections[proj.name] = proj
    state.tables[table.name] = table.with_projection(proj.name)


def _h_drop_projection(state: CatalogState, op: Op) -> None:
    name = op["name"]
    proj = state.projections.pop(name, None)
    if proj is None:
        raise CatalogError(f"no projection named {name!r}")
    table = state.tables.get(proj.anchor_table)
    if table is not None:
        state.tables[table.name] = table.without_projection(name)
    for sid, c in list(state.containers.items()):
        if c.projection == name:
            del state.containers[sid]


def _h_create_live_agg(state: CatalogState, op: Op) -> None:
    lap = LiveAggregateProjection.from_json(op["lap"])  # type: ignore[arg-type]
    if lap.name in state.live_aggs:
        raise CatalogError(f"live aggregate {lap.name!r} already exists")
    state.table(lap.anchor_table)  # must exist
    state.live_aggs[lap.name] = lap


def _h_create_user(state: CatalogState, op: Op) -> None:
    user = User.from_json(op["user"])  # type: ignore[arg-type]
    if user.name in state.users:
        raise CatalogError(f"user {user.name!r} already exists")
    state.users[user.name] = user


def _h_add_container(state: CatalogState, op: Op) -> None:
    container = container_from_json(op["container"])  # type: ignore[arg-type]
    key = str(container.sid)
    if key in state.containers:
        raise CatalogError(f"container {key} already exists")
    state.containers[key] = container


def _h_drop_container(state: CatalogState, op: Op) -> None:
    key = op["sid"]
    if state.containers.pop(key, None) is None:
        raise CatalogError(f"no container {key}")
    for sid, d in list(state.delete_vectors.items()):
        if str(d.target_sid) == key:
            del state.delete_vectors[sid]


def _h_add_delete_vector(state: CatalogState, op: Op) -> None:
    dv = dv_from_json(op["dv"])  # type: ignore[arg-type]
    key = str(dv.sid)
    if key in state.delete_vectors:
        raise CatalogError(f"delete vector {key} already exists")
    state.delete_vectors[key] = dv


def _h_drop_delete_vector(state: CatalogState, op: Op) -> None:
    key = op["sid"]
    if state.delete_vectors.pop(key, None) is None:
        raise CatalogError(f"no delete vector {key}")


def _h_set_property(state: CatalogState, op: Op) -> None:
    state.properties[op["key"]] = op["value"]  # type: ignore[index]


def _h_set_subscription(state: CatalogState, op: Op) -> None:
    state.subscriptions[(op["node"], op["shard_id"])] = op["state"]  # type: ignore[index]


def _h_drop_subscription(state: CatalogState, op: Op) -> None:
    state.subscriptions.pop((op["node"], op["shard_id"]), None)


_HANDLERS: Dict[str, Callable[[CatalogState, Op], None]] = {
    "create_table": _h_create_table,
    "drop_table": _h_drop_table,
    "add_column": _h_add_column,
    "create_projection": _h_create_projection,
    "drop_projection": _h_drop_projection,
    "create_live_agg": _h_create_live_agg,
    "create_user": _h_create_user,
    "add_container": _h_add_container,
    "drop_container": _h_drop_container,
    "add_delete_vector": _h_add_delete_vector,
    "drop_delete_vector": _h_drop_delete_vector,
    "set_property": _h_set_property,
    "set_subscription": _h_set_subscription,
    "drop_subscription": _h_drop_subscription,
}

"""Deterministic parallel fetch scheduler for the depot↔shared-storage path.

The paper's cold-vs-warm depot gap (Fig 10, section 3.3) is dominated by
shared-storage round-trips, and real Eon hides them by overlapping fetches.
The serial miss path in this reproduction charges the sim clock the *sum*
of per-file latencies; this module replaces it for scans with a batch
scheduler that models what a production I/O layer does:

* **lanes** — a scan hands its whole post-pruning file set over at once;
  fetch units are issued in plan order onto ``lanes`` concurrent
  connections and the batch costs max-over-lanes
  (:meth:`SimClock.charge_parallel`), not the serial sum;
* **dedup** — a key requested twice in a batch (e.g. a delete vector
  shared by two containers) is fetched once;
* **coalescing** — runs of small adjacent files are fetched as one larger
  GET (:meth:`Filesystem.read_coalesced`), amortising the per-request
  latency and the per-request dollar cost — the paper's "larger request
  sizes than local disk" tuning made cost-model visible;
* **peer depot fetch** — a file missing locally but resident in a peer
  node's depot is copied at network latency instead of S3 latency, and
  without spending an S3 request (section 5.2's peer-to-peer transfer,
  applied to scans);
* **prefetch** — because the whole batch is fetched up front, files of
  every container after the first arrive before the scan reaches them;
  their consumption is booked as ``prefetch_hits`` (never as demand depot
  hits — see :class:`~repro.cache.disk_cache.CacheStats`);
* **shaping bypass** — oversized objects and files a
  :class:`~repro.cache.disk_cache.ShapingPolicy` denies bypass the depot:
  they are never coalesced, never peer-fetched, never counted as
  prefetched, and their bytes are handed straight to the scan.

Everything is deterministic: planning is pure, peers are probed in sorted
node-name order, fetch units execute in plan order, and the only RNG
touched is the shared backend's fault injector (one draw per *request*,
so a coalesced group draws once — same contract as any other request).

Demand hit/miss accounting is kept bit-identical to the serial path: every
deduplicated request goes through ``cache.get`` exactly once (hit or miss)
and every fetched file goes through ``note_miss_bytes`` + ``put`` exactly
as :meth:`Node.fetch_storage` would, so depot stats, shaping-policy
rejections, and LRU membership agree with a scheduler-off run file-for-file
within a single scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cache.disk_cache import ObjectInfo
from repro.errors import QueryCancelled
from repro.shared_storage.api import retrying


@dataclass(frozen=True)
class FetchRequest:
    """One storage file a scan will read.

    ``container_index`` is the file's container ordinal within the scan
    batch (delete vectors carry their container's ordinal); coalescing
    only groups files whose ordinals are close (``coalesce_max_gap``), and
    prefetch accounting treats everything past the first fetched ordinal
    as fetched ahead of need.
    """

    key: str
    size: int
    container_index: int
    info: ObjectInfo = ObjectInfo()


@dataclass
class IOSchedulerConfig:
    """Tuning knobs; defaults follow the S3 latency model's sweet spot
    (30 ms per request vs ~11 ms/MB of bandwidth: concurrency and request
    amortisation dominate until files reach a few MB)."""

    #: Concurrent fetch connections per scan batch.
    lanes: int = 4
    #: A coalesced group's total payload cap.
    coalesce_max_bytes: int = 4 << 20
    #: Max member files per coalesced group.
    coalesce_max_files: int = 8
    #: Only files at or below this size are coalescing candidates; larger
    #: files already amortise the per-request latency on their own.
    coalesce_file_limit: int = 256 << 10
    #: Max container-ordinal distance between adjacent group members.
    coalesce_max_gap: int = 1
    #: Probe peer depots before falling back to shared storage.
    peer_fetch: bool = True
    #: Fetch the whole batch up front (containers after the first arrive
    #: before the scan needs them).  Off: only the first container's files
    #: are batched; the rest take the serial path.
    prefetch: bool = True


@dataclass
class FetchPlan:
    """Pure planning output: what is already resident, what to fetch, and
    which keys bypass the depot."""

    resident: List[FetchRequest] = field(default_factory=list)
    #: Fetch units in issue order; a group of >1 is one coalesced GET.
    groups: List[List[FetchRequest]] = field(default_factory=list)
    #: Keys that must not be cached (oversized / policy-denied).
    bypass: Set[str] = field(default_factory=set)
    #: Requests dropped by in-batch dedup (same key asked twice).
    duplicates: int = 0


@dataclass
class IOStats:
    """Out-of-band scheduler accounting (invariant checkers and BENCH
    JSON read this; nothing here feeds back into the simulation)."""

    batches: int = 0
    requests: int = 0
    deduplicated: int = 0
    fetched_files: int = 0
    fetched_bytes: int = 0
    s3_gets: int = 0
    coalesced_gets: int = 0
    peer_fetches: int = 0
    prefetched_files: int = 0
    #: A key fetched more than once within one batch — must stay 0.
    double_fetches: int = 0
    #: Depot capacity violations observed right after a batch ``put``
    #: (i.e. *during* the parallel fetch) — must stay 0.
    capacity_violations: int = 0
    #: Server-side pushdown lane (:meth:`IOScheduler.pushdown_batch`).
    pushdown_batches: int = 0
    pushdown_selects: int = 0
    pushdown_bytes_scanned: int = 0
    #: Fetch units demoted to background hydration because a pushdown scan
    #: covers their containers (dollars and depot effects charged as usual;
    #: latency off the scan's critical path).
    background_fetches: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "batches": self.batches,
            "requests": self.requests,
            "deduplicated": self.deduplicated,
            "fetched_files": self.fetched_files,
            "fetched_bytes": self.fetched_bytes,
            "s3_gets": self.s3_gets,
            "coalesced_gets": self.coalesced_gets,
            "peer_fetches": self.peer_fetches,
            "prefetched_files": self.prefetched_files,
            "double_fetches": self.double_fetches,
            "capacity_violations": self.capacity_violations,
            "pushdown_batches": self.pushdown_batches,
            "pushdown_selects": self.pushdown_selects,
            "pushdown_bytes_scanned": self.pushdown_bytes_scanned,
            "background_fetches": self.background_fetches,
        }


@dataclass
class FetchBatch:
    """What :meth:`IOScheduler.fetch_batch` hands back to the scan."""

    data: Dict[str, bytes] = field(default_factory=dict)
    #: Keys cached ahead of need; consuming one books a prefetch hit.
    prefetched: Set[str] = field(default_factory=set)


def plan_fetch(
    requests: Sequence[FetchRequest],
    resident: Set[str],
    bypass: Set[str],
    config: IOSchedulerConfig,
    supports_coalesced: bool = True,
) -> FetchPlan:
    """Pure fetch planning: dedup, split resident/fetch, coalesce.

    Invariants the property suite pins:

    * the plan's resident + group members cover exactly the deduplicated
      request keys, each once;
    * a group of more than one file has every member at or below
      ``coalesce_file_limit``, total bytes within ``coalesce_max_bytes``,
      at most ``coalesce_max_files`` members, adjacent container ordinals
      within ``coalesce_max_gap``, and no bypass member;
    * output order is a deterministic function of input order.
    """
    plan = FetchPlan(bypass=set(bypass))
    seen: Set[str] = set()
    group: List[FetchRequest] = []
    group_bytes = 0

    def flush() -> None:
        nonlocal group, group_bytes
        if group:
            plan.groups.append(group)
            group, group_bytes = [], 0

    for request in requests:
        if request.key in seen:
            plan.duplicates += 1
            continue
        seen.add(request.key)
        if request.key in resident:
            plan.resident.append(request)
            continue
        coalescable = (
            supports_coalesced
            and request.key not in bypass
            and request.size <= config.coalesce_file_limit
        )
        if not coalescable:
            flush()
            plan.groups.append([request])
            continue
        if group and (
            group_bytes + request.size > config.coalesce_max_bytes
            or len(group) >= config.coalesce_max_files
            or request.container_index - group[-1].container_index
            > config.coalesce_max_gap
        ):
            flush()
        group.append(request)
        group_bytes += request.size
    flush()
    return plan


class IOScheduler:
    """Executes fetch plans against a cluster; one per :class:`EonCluster`."""

    def __init__(self, cluster, config: Optional[IOSchedulerConfig] = None):
        self.cluster = cluster
        self.config = config or IOSchedulerConfig()
        self.stats = IOStats()

    # -- planning helpers ------------------------------------------------------

    def _bypass_keys(self, node, requests: Sequence[FetchRequest]) -> Set[str]:
        cache = node.cache
        return {
            r.key
            for r in requests
            if r.size > cache.capacity_bytes or not cache.policy.allows(r.info)
        }

    def _peer_with(self, node, key: str):
        """First up peer (sorted by name) holding ``key`` in its depot."""
        for name in sorted(self.cluster.nodes):
            peer = self.cluster.nodes[name]
            if peer is node or not peer.is_up:
                continue
            if peer.cache.contains(key):
                return peer
        return None

    # -- the batch fetch -------------------------------------------------------

    def fetch_batch(
        self, node, requests, use_cache, result, cancelled=None, pool=None,
        background_keys=None,
    ) -> FetchBatch:
        """Fetch a scan's file set; returns the bytes keyed by storage name.

        ``result`` is the scan's :class:`ScanResult`; hit/miss/io/S3
        accounting lands there exactly once, at fetch time — consuming the
        batch later adds only prefetch bookkeeping.  ``cancelled`` (a
        nullary callable) is polled between fetch units: queries must stay
        cancellable at file boundaries even mid-batch ("Vertica cannot
        hang waiting for S3 to respond", section 5.3).

        ``pool`` (a :class:`~repro.engine.pipeline.PipelineCharges`) defers
        this batch's lane makespan to a per-query settlement instead of
        charging it here — the pipelined executor's driver-issued prefetch,
        which keeps lanes busy across scan boundaries.  Every demand-side
        effect (cache.get calls, misses, puts, S3 requests, retries) is
        identical with or without a pool; only the timing charge moves.

        ``background_keys`` marks keys whose containers a pushdown scan
        will cover: the scan does not *wait* for them, so units made up
        entirely of such keys are demoted to background depot hydration —
        every demand-side effect (GET requests, dollars, misses, puts,
        fault draws) is charged exactly as a foreground unit, in the same
        order, but their lane makespan is dropped from the scan's critical
        path.  A unit mixing background and foreground keys (coalescing
        may group them) stays foreground, conservatively.
        """
        config = self.config
        clock = self.cluster.clock
        shared = self.cluster.shared_data
        cost = getattr(self.cluster.shared, "cost", None)
        get_dollars = cost.get_cost() if cost is not None else 0.0
        obs = self.cluster.obs

        self.stats.batches += 1
        self.stats.requests += len(requests)
        if not config.prefetch and requests:
            # Only the first container's files are batched; later
            # containers fall back to the serial path at consume time.
            first = min(r.container_index for r in requests)
            requests = [r for r in requests if r.container_index == first]

        resident_keys = {r.key for r in requests if node.cache.contains(r.key)}
        bypass = self._bypass_keys(node, requests)
        plan = plan_fetch(
            requests,
            resident_keys if use_cache else set(),
            bypass,
            config,
            supports_coalesced=shared.supports_coalesced_get,
        )
        self.stats.deduplicated += plan.duplicates

        batch = FetchBatch()
        hit_seconds = 0.0

        # Demand hits: same accounting as the serial path's cache.get.
        overflow: List[FetchRequest] = []
        for request in plan.resident:
            data = node.cache.get(request.key, use_cache=use_cache)
            if data is None:
                # Local disk lost the file between planning and now
                # (self-healed to a miss); fetch it like any other.
                overflow.append(request)
                continue
            node.cache_reads += 1
            hit_seconds += node.local_fs.estimate_read_seconds(len(data))
            result.bytes_from_cache += len(data)
            result.depot_hits += 1
            batch.data[request.key] = data
        for request in overflow:
            plan.groups.append([request])

        # Every fetched file was classified a miss by the depot, exactly
        # once — the serial path's cache.get(miss) counterpart.  Overflow
        # requests already booked their miss in the resident loop above.
        overflow_keys = {r.key for r in overflow}
        to_fetch = [r for group in plan.groups for r in group]
        for request in to_fetch:
            if request.key not in overflow_keys:
                node.cache.get(request.key, use_cache=False)
        first_fetch_index = min(
            (r.container_index for r in to_fetch), default=0
        )

        # Peel peer-resident files out of their groups into network units.
        units: List[Tuple[str, object, List[FetchRequest]]] = []
        for group in plan.groups:
            remainder: List[FetchRequest] = []
            for request in group:
                peer = None
                if config.peer_fetch and use_cache and request.key not in bypass:
                    peer = self._peer_with(node, request.key)
                if peer is not None:
                    units.append(("peer", peer, [request]))
                else:
                    remainder.append(request)
            if remainder:
                units.append(("s3", None, remainder))

        # Execute units in plan order, collecting per-unit durations for
        # the lane charge.  Background units keep their position in the
        # execution order (identical request/fault-draw sequence either
        # way) but their durations are pooled separately.
        background = background_keys or set()
        durations: List[float] = []
        background_durations: List[float] = []
        fetched_keys: Set[str] = set()
        total_fetched_bytes = 0
        backoff_before = shared.metrics.retry_backoff_seconds
        for kind, peer, members in units:
            if cancelled is not None and cancelled():
                raise QueryCancelled(
                    "session cancelled between batch fetch units"
                )
            names = [r.key for r in members]
            for key in names:
                if key in fetched_keys:
                    self.stats.double_fetches += 1
                fetched_keys.add(key)
            evictions_before = node.cache.stats.evictions
            if kind == "peer":
                data_map = {names[0]: peer.cache.peek(names[0])}
                if data_map[names[0]] is None:
                    # Peer lost the file after planning; fall back to S3.
                    kind = "s3"
                    data_map = {
                        names[0]: retrying(
                            lambda n=names[0]: shared.read(n), shared.metrics
                        )
                    }
            elif len(names) == 1:
                data_map = {
                    names[0]: retrying(
                        lambda n=names[0]: shared.read(n), shared.metrics
                    )
                }
            else:
                data_map = retrying(
                    lambda: shared.read_coalesced(list(names)), shared.metrics
                )
            unit_bytes = sum(len(v) for v in data_map.values())
            if kind == "peer":
                seconds = self.cluster.cost_model.network_seconds(unit_bytes)
                self.stats.peer_fetches += 1
                result.peer_fetches += 1
                if obs.enabled:
                    obs.metrics.counter("io.peer_fetches", node=node.name).inc()
            else:
                seconds = shared.estimate_read_seconds(unit_bytes)
                self.stats.s3_gets += 1
                result.s3_requests += 1
                result.s3_dollars += get_dollars
                if len(names) > 1:
                    self.stats.coalesced_gets += 1
                    result.coalesced_gets += 1
                    if obs.enabled:
                        obs.metrics.counter(
                            "io.coalesced_gets", node=node.name
                        ).inc()
            if background and all(r.key in background for r in members):
                background_durations.append(seconds)
                self.stats.background_fetches += 1
            else:
                durations.append(seconds)
            total_fetched_bytes += unit_bytes

            for request in members:
                data = data_map[request.key]
                node.shared_reads += 1
                node.cache.note_miss_bytes(len(data))
                result.bytes_from_shared += len(data)
                result.depot_misses += 1
                cached = False
                if use_cache:
                    # Bypass keys are rejected inside ``put`` (oversized /
                    # policy-denied), with the same bookkeeping the serial
                    # path's write-through attempt performs.
                    cached = node.cache.put(
                        request.key, data, info=request.info
                    )
                    if node.cache.capacity_violation() is not None:
                        self.stats.capacity_violations += 1
                if cached and request.container_index > first_fetch_index:
                    batch.prefetched.add(request.key)
                    self.stats.prefetched_files += 1
                batch.data[request.key] = data
            if obs.enabled and kind == "s3":
                obs.tracer.record(
                    "s3_get",
                    duration=seconds,
                    node=node.name,
                    object=names[0],
                    nbytes=unit_bytes,
                    files=len(names),
                    evictions=node.cache.stats.evictions - evictions_before,
                )

        makespan, lane_totals = clock.charge_parallel(durations, config.lanes)
        # Background hydration occupies lanes "for free": its makespan is
        # computed for observability but never folded into the scan's
        # io_seconds or the pipeline pool — the pushdown scan it races
        # already carries the critical-path charge.
        background_makespan, _ = clock.charge_parallel(
            background_durations, config.lanes
        )
        # Retry backoff accumulated by this batch's units is query time —
        # fold it into the batch's I/O seconds (serially: backoff stalls
        # the retry loop, not a lane) so throttled scans report higher
        # latency, matching the serial fetch path's accounting.
        backoff_seconds = shared.metrics.retry_backoff_seconds - backoff_before
        if pool is not None:
            pool.add(node.name, durations, makespan)
            result.io_seconds += hit_seconds + backoff_seconds
        else:
            result.io_seconds += makespan + hit_seconds + backoff_seconds
        self.stats.fetched_files += len(fetched_keys)
        self.stats.fetched_bytes += total_fetched_bytes
        if obs.enabled:
            obs.metrics.gauge("io.lane_occupancy", node=node.name).set(
                sum(lane_totals) / makespan if makespan > 0 else 0.0
            )
            obs.tracer.record(
                "fetch_batch",
                duration=makespan,
                node=node.name,
                files=len(batch.data),
                fetched=len(fetched_keys),
                units=len(units),
                peer_fetches=sum(1 for k, _, _ in units if k == "peer"),
                prefetched=len(batch.prefetched),
                nbytes=total_fetched_bytes,
                background_units=len(background_durations),
                background_makespan=background_makespan,
            )
        return batch

    def pushdown_batch(
        self, node, items, result, cancelled=None, pool=None
    ) -> Dict[str, object]:
        """Run server-side selects for a scan's pushdown containers.

        ``items`` is ``[(key, columns, predicate), ...]`` in container
        order.  Pushdown requests ride their own lane pool and are never
        coalesced — a select is container-addressed compute, not a byte
        range — and they run *after* the batch fetch, so the GET request
        and fault-draw sequence of a run with pushdown is the off-run's
        sequence with SELECT draws appended, never interleaved.

        Accounting: each select's dollars fold into ``result.s3_dollars``
        (the per-query money ledger) but **not** ``result.s3_requests``,
        which stays a GET counter so differential runs can compare GET
        ledgers bit-for-bit; scanned bytes land on
        ``result.bytes_scanned`` and the scheduler's pushdown stats.
        """
        clock = self.cluster.clock
        shared = self.cluster.shared_data
        obs = self.cluster.obs
        selects: Dict[str, object] = {}
        if not items:
            return selects
        self.stats.pushdown_batches += 1
        durations: List[float] = []
        backoff_before = shared.metrics.retry_backoff_seconds
        for key, columns, predicate in items:
            if cancelled is not None and cancelled():
                raise QueryCancelled(
                    "session cancelled between pushdown scan units"
                )
            select = retrying(
                lambda k=key, c=columns, p=predicate: shared.select_scan(
                    k, c, p
                ),
                shared.metrics,
            )
            selects[key] = select
            durations.append(select.sim_seconds)
            self.stats.pushdown_selects += 1
            self.stats.pushdown_bytes_scanned += select.bytes_scanned
            result.pushdown_scans += 1
            result.bytes_scanned += select.bytes_scanned
            result.s3_dollars += select.dollars
            if obs.enabled:
                obs.tracer.record(
                    "pushdown",
                    duration=select.sim_seconds,
                    node=node.name,
                    object=key,
                    scanned=select.bytes_scanned,
                    returned=select.bytes_returned,
                    rows=select.rows.num_rows,
                )
        makespan, _ = clock.charge_parallel(durations, self.config.lanes)
        backoff_seconds = shared.metrics.retry_backoff_seconds - backoff_before
        if pool is not None:
            pool.add(node.name, durations, makespan)
            result.io_seconds += backoff_seconds
        else:
            result.io_seconds += makespan + backoff_seconds
        return selects

    def consume(self, batch: Optional[FetchBatch], node, key: str, result):
        """Take ``key``'s bytes out of a batch, booking prefetch credit.

        Returns None when the batch does not cover the key (the scan falls
        back to the serial fetch path).
        """
        if batch is None:
            return None
        data = batch.data.get(key)
        if data is None:
            return None
        if key in batch.prefetched:
            batch.prefetched.discard(key)  # credit once
            node.cache.note_prefetch_hit(key, len(data))
            result.prefetch_hits += 1
            obs = self.cluster.obs
            if obs.enabled:
                obs.metrics.counter("io.prefetch_hits", node=node.name).inc()
        return data

"""Deterministic parallel I/O scheduling for the depot <-> shared-storage path."""

from repro.io.scheduler import (
    FetchBatch,
    FetchPlan,
    FetchRequest,
    IOScheduler,
    IOSchedulerConfig,
    IOStats,
    plan_fetch,
)

__all__ = [
    "FetchBatch",
    "FetchPlan",
    "FetchRequest",
    "IOScheduler",
    "IOSchedulerConfig",
    "IOStats",
    "plan_fetch",
]

"""Peer-to-peer cache warming (sections 5.2 and 6.1).

"When a node subscribes to a shard, it warms up its cache to resemble the
cache of its peer.  The node attempts to select a peer from the same
subcluster, if any ... The subscriber supplies the peer with a capacity
target and the peer supplies a list of most-recently-used files that fit
within the budget.  The subscriber can then either fetch the files from
shared storage or from the peer itself."

Warming is a *byte-based file copy*, not an executed query plan — the key
operational difference from Enterprise recovery (section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.disk_cache import FileCache
from repro.errors import ObjectNotFound
from repro.shared_storage.api import Filesystem, retrying


@dataclass
class WarmingReport:
    """Outcome of one warming pass."""

    requested: int = 0
    copied_from_peer: int = 0
    fetched_from_shared: int = 0
    already_present: int = 0
    missing: int = 0
    bytes_transferred: int = 0
    files: List[str] = field(default_factory=list)

    @property
    def transferred(self) -> int:
        return self.copied_from_peer + self.fetched_from_shared


def warm_from_peer(
    subscriber: FileCache,
    peer: FileCache,
    shared: Filesystem,
    budget_bytes: Optional[int] = None,
    prefer_peer: bool = True,
    shard_id: Optional[int] = None,
) -> WarmingReport:
    """Warm ``subscriber`` to resemble ``peer``'s cache.

    Incremental by construction: files the subscriber already holds are
    skipped, so re-subscription after a short outage ("a lukewarm cache")
    transfers only what is missing.  When ``shard_id`` is given, only the
    peer's files for that shard are considered (subscribing to one shard
    must not pull another shard's working set).
    """
    if budget_bytes is None:
        budget_bytes = subscriber.capacity_bytes
    report = WarmingReport()
    for name in peer.warm_list(budget_bytes):
        if shard_id is not None:
            info_shard = peer.info_of(name).shard_id
            if info_shard is not None and info_shard != shard_id:
                continue
        report.requested += 1
        if subscriber.contains(name):
            report.already_present += 1
            continue
        data: Optional[bytes] = None
        if prefer_peer:
            # Out-of-band read: warming must not inflate the peer's demand
            # hit counts or reorder its LRU (its eviction decisions should
            # reflect its own workload, and ``byte_hit_rate`` denominators
            # must reconcile with depot_activity — see the stats audit).
            data = peer.peek(name)
            if data is not None:
                report.copied_from_peer += 1
        if data is None:
            try:
                data = retrying(lambda n=name: shared.read(n), shared.metrics)
                report.fetched_from_shared += 1
            except ObjectNotFound:
                report.missing += 1
                continue
        if subscriber.put(name, data, info=peer.info_of(name)):
            report.bytes_transferred += len(data)
            report.files.append(name)
    return report

"""The Eon file cache (section 5.2).

A disk cache of whole data files fetched from shared storage.  Files are
immutable, so the cache only handles add and drop — never invalidate.
Eviction is LRU; shaping policies let operators pin or exclude tables; the
cache is write-through at load time; and new subscribers warm their cache
from a peer's most-recently-used list.
"""

from repro.cache.disk_cache import CacheStats, FileCache, ShapingPolicy
from repro.cache.lru import LruIndex
from repro.cache.warming import WarmingReport, warm_from_peer

__all__ = [
    "FileCache",
    "ShapingPolicy",
    "CacheStats",
    "LruIndex",
    "warm_from_peer",
    "WarmingReport",
]

"""The per-node disk cache of shared-storage files (section 5.2).

Semantics from the paper:

* caches *entire data files*; files are immutable so there is no
  invalidation path, only add and drop;
* eviction is LRU, except for entries pinned by a shaping policy;
* shaping policies express "don't use the cache for this query" (per-call
  ``use_cache=False``), "never cache table T2" (deny list), and "cache
  recent partitions of table T" (pin predicate);
* the cache is write-through on load and mergeout output;
* the whole cache can be cleared.

The cache stores bytes in a UDFS backend (a node's local disk).  Object
metadata (which table/projection/partition a file belongs to) is supplied
by the caller on ``put`` so policies can match on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from repro.cache.lru import LruIndex
from repro.errors import ObjectNotFound
from repro.shared_storage.api import Filesystem


@dataclass(frozen=True)
class ObjectInfo:
    """What the cache knows about a file, for shaping-policy matching and
    shard-targeted cache warming."""

    table: Optional[str] = None
    projection: Optional[str] = None
    partition_key: Optional[object] = None
    shard_id: Optional[int] = None


@dataclass
class ShapingPolicy:
    """Operator-configured cache shaping (section 5.2).

    ``deny_tables`` are never cached.  ``pin`` is a predicate over
    :class:`ObjectInfo`; matching files are exempt from LRU eviction (e.g.
    "cache recent partitions of table T" becomes a predicate on
    ``partition_key``).  Pinned files can still be dropped explicitly.
    """

    deny_tables: Set[str] = field(default_factory=set)
    pin: Optional[Callable[[ObjectInfo], bool]] = None

    def allows(self, info: ObjectInfo) -> bool:
        return info.table not in self.deny_tables

    def pins(self, info: ObjectInfo) -> bool:
        return self.pin is not None and self.pin(info)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected_by_policy: int = 0
    #: Byte-level accounting: event counts alone cannot answer the paper's
    #: depot-sizing question ("what fraction of *bytes* came from the
    #: depot?"), so track bytes served on hits, bytes inserted, bytes
    #: reclaimed by LRU eviction, and bytes fetched from shared storage
    #: after a miss (reported by the caller, which knows the fetch size).
    bytes_read: int = 0
    bytes_written: int = 0
    bytes_evicted: int = 0
    bytes_missed: int = 0
    #: Prefetch consumption is accounted separately from demand traffic: a
    #: scan that reads a file the I/O scheduler fetched speculatively was
    #: *not* a demand hit (the file was charged as a miss when fetched), so
    #: folding it into ``hits``/``bytes_read`` would double-count the bytes
    #: and push ``byte_hit_rate`` above what the depot actually absorbed.
    prefetch_hits: int = 0
    prefetch_bytes_read: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def byte_hit_rate(self) -> float:
        total = self.bytes_read + self.bytes_missed
        return self.bytes_read / total if total else 0.0


class FileCache:
    """Size-bounded write-through file cache over a local filesystem."""

    def __init__(
        self,
        local_fs: Filesystem,
        capacity_bytes: int,
        policy: Optional[ShapingPolicy] = None,
        name_prefix: str = "cache_",
    ):
        if capacity_bytes < 0:
            raise ValueError("capacity must be >= 0")
        self._fs = local_fs
        self.capacity_bytes = capacity_bytes
        self.policy = policy or ShapingPolicy()
        self._prefix = name_prefix
        self._index = LruIndex()
        self._info: Dict[str, ObjectInfo] = {}
        self._pinned: Set[str] = set()
        self.stats = CacheStats()
        #: Optional ``sink(event, name, size)`` called on depot events the
        #: Data Collector records (currently evictions).  Must be free of
        #: side effects on the cache itself.
        self.event_sink = None

    # -- core operations -------------------------------------------------------

    def put(
        self,
        name: str,
        data: bytes,
        info: Optional[ObjectInfo] = None,
        use_cache: bool = True,
    ) -> bool:
        """Insert a file; returns True if cached.

        Respects the shaping policy and the per-call ``use_cache`` escape
        hatch ("while loading archive data, write-through the cache can be
        turned off").  Oversized files are not cached.
        """
        info = info or ObjectInfo()
        if not use_cache or not self.policy.allows(info):
            self.stats.rejected_by_policy += 1
            return False
        if len(data) > self.capacity_bytes:
            return False
        if name in self._index:
            # Drop the old entry before making room: sizing eviction by the
            # delta is wrong when the eviction loop picks the entry being
            # replaced (its bytes would be reclaimed twice on paper, once
            # in reality, leaving the cache over capacity).
            self._forget(name)
        self._evict_for(len(data))
        self._fs.write(self._key(name), data)
        self._index.add(name, len(data))
        self._info[name] = info
        if self.policy.pins(info):
            self._pinned.add(name)
        self.stats.insertions += 1
        self.stats.bytes_written += len(data)
        return True

    def get(self, name: str, use_cache: bool = True) -> Optional[bytes]:
        """Fetch a file; None on miss.  ``use_cache=False`` always misses
        (and does not disturb recency) — the "don't use the cache for this
        query" shaping policy."""
        if not use_cache or name not in self._index:
            self.stats.misses += 1
            return None
        try:
            data = self._fs.read(self._key(name))
        except ObjectNotFound:
            # Local disk lost the file (e.g. instance storage wiped);
            # self-heal the index and report a miss.
            self._forget(name)
            self.stats.misses += 1
            return None
        self._index.touch(name)
        self.stats.hits += 1
        self.stats.bytes_read += len(data)
        return data

    def peek(self, name: str) -> Optional[bytes]:
        """Read a cached file without touching stats or recency.

        Peer-depot fetches and other out-of-band readers use this: a
        remote node borrowing a file must not inflate this node's demand
        hit counts or reorder its LRU (the owner's eviction decisions
        should reflect only its own workload).
        """
        if name not in self._index:
            return None
        try:
            return self._fs.read(self._key(name))
        except ObjectNotFound:
            self._forget(name)  # self-heal, as in ``get``
            return None

    def note_prefetch_hit(self, name: str, nbytes: int) -> None:
        """Record that a scan consumed a prefetch-filled entry.

        Touches recency (the file *was* used) but books the bytes under
        the prefetch counters instead of ``hits``/``bytes_read`` — see
        :class:`CacheStats` for why.
        """
        if name in self._index:
            self._index.touch(name)
        self.stats.prefetch_hits += 1
        self.stats.prefetch_bytes_read += nbytes

    def contains(self, name: str) -> bool:
        return name in self._index

    def drop(self, name: str) -> None:
        """Remove a file (e.g. its storage was dropped and dereferenced)."""
        if name in self._index:
            self._fs.delete(self._key(name))
            self._forget(name)

    def clear(self) -> None:
        """Empty the cache completely (section 5.2: "If needed the cache
        can be cleared completely")."""
        for name in self._index.names():
            self._fs.delete(self._key(name))
        self._index = LruIndex()
        self._info.clear()
        self._pinned.clear()

    # -- warming support ----------------------------------------------------------

    def warm_list(self, budget_bytes: int) -> list:
        """Most-recently-used names fitting ``budget_bytes`` — what this
        node supplies when a new subscriber asks it to act as warming peer."""
        return self._index.most_recent_within(budget_bytes)

    def info_of(self, name: str) -> ObjectInfo:
        return self._info.get(name, ObjectInfo())

    def note_miss_bytes(self, nbytes: int) -> None:
        """Record how large a miss turned out to be.  ``get`` cannot know
        (the data lives on shared storage); the caller reports it after
        the shared fetch so :attr:`CacheStats.byte_hit_rate` is computable."""
        self.stats.bytes_missed += nbytes

    # -- internals -------------------------------------------------------------------

    def _key(self, name: str) -> str:
        return self._prefix + name

    def _forget(self, name: str) -> None:
        self._index.remove(name)
        self._info.pop(name, None)
        self._pinned.discard(name)

    def _evict_for(self, incoming: int) -> None:
        if incoming <= 0:
            return
        target = self.capacity_bytes - incoming
        if self._index.total_bytes <= target:
            return
        for name, size in self._index.least_recent():
            if self._index.total_bytes <= target:
                break
            if name in self._pinned:
                continue
            self._fs.delete(self._key(name))
            self._forget(name)
            self.stats.evictions += 1
            self.stats.bytes_evicted += size
            if self.event_sink is not None:
                self.event_sink("evict", name, size)

    # -- introspection ------------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._index.total_bytes

    @property
    def pinned_bytes(self) -> int:
        return sum(self._index.size_of(n) or 0 for n in self._pinned)

    @property
    def file_count(self) -> int:
        return len(self._index)

    def capacity_violation(self) -> Optional[str]:
        """Invariant accessor: None when cached bytes respect capacity.

        Pinned entries are exempt from eviction, so a cache whose overflow
        is entirely attributable to pins is within contract; any other
        overflow is a bug (eviction failed to make room).
        """
        used = self._index.total_bytes
        if used <= self.capacity_bytes:
            return None
        if used - self.pinned_bytes <= self.capacity_bytes:
            return None  # overflow forced by shaping-policy pins
        return (
            f"cache holds {used} bytes > capacity {self.capacity_bytes} "
            f"(pinned {self.pinned_bytes})"
        )

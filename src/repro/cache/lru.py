"""Size-aware LRU index.

"The cache eviction policy is a simple least-recently-used (LRU)
mechanism, assuming that past access is a good predictor of future need."
(section 5.2).  This index tracks names, sizes, and recency; the actual
bytes live in the owning :class:`~repro.cache.disk_cache.FileCache`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional, Tuple


class LruIndex:
    """Ordered name -> size map; least recently used first."""

    def __init__(self) -> None:
        self._entries: "OrderedDict[str, int]" = OrderedDict()
        self.total_bytes = 0

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, name: str, size: int) -> None:
        """Insert (or refresh) ``name`` as most recently used."""
        if name in self._entries:
            self.total_bytes -= self._entries.pop(name)
        self._entries[name] = size
        self.total_bytes += size

    def touch(self, name: str) -> None:
        """Mark ``name`` most recently used; missing names are ignored."""
        if name in self._entries:
            self._entries.move_to_end(name)

    def remove(self, name: str) -> Optional[int]:
        """Drop ``name``; returns its size, or None if absent."""
        size = self._entries.pop(name, None)
        if size is not None:
            self.total_bytes -= size
        return size

    def size_of(self, name: str) -> Optional[int]:
        return self._entries.get(name)

    def least_recent(self) -> Iterator[Tuple[str, int]]:
        """Entries from coldest to hottest."""
        return iter(list(self._entries.items()))

    def most_recent_within(self, budget_bytes: int) -> List[str]:
        """Hottest entries whose cumulative size fits ``budget_bytes``.

        This is the list a cache-warming peer supplies to a new subscriber
        given a capacity target (section 5.2).
        """
        chosen: List[str] = []
        used = 0
        for name, size in reversed(self._entries.items()):
            if used + size > budget_bytes:
                continue
            chosen.append(name)
            used += size
        return chosen

    def names(self) -> List[str]:
        return list(self._entries)

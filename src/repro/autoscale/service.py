"""The autoscaler facade: telemetry → policy → actuation, one tick.

This is the sixth background service (after catalog sync, cluster_info,
mergeout, reaper, rebalance): attach it to a
:class:`~repro.cluster.services.ServiceScheduler` and every tick closes
the loop from the workload manager's queue telemetry to live topology.
The tick order is deliberate — repair before deciding, so the policy
always sees a cluster the previous tick's debris has been swept from:

1. repair half-created nodes from interrupted scale-outs;
2. finish pending removals whose victims have drained;
3. sample telemetry deltas;
4. ask the policy for a decision;
5. actuate it.
"""

from __future__ import annotations

from typing import Optional

from repro.autoscale.actuator import BURST_SUBCLUSTER, TopologyActuator
from repro.autoscale.policy import (
    HIBERNATE,
    HOLD,
    REVIVE,
    SCALE_IN,
    SCALE_OUT,
    Decision,
    PolicyConfig,
    PolicyEngine,
    ScalerStatus,
    ThresholdPolicy,
)
from repro.autoscale.telemetry import TelemetryCollector, TelemetrySample


class Autoscaler:
    """Closed-loop elastic autoscaler over one managed subcluster."""

    def __init__(
        self,
        cluster,
        policy: Optional[PolicyEngine] = None,
        actuator: Optional[TopologyActuator] = None,
        config: Optional[PolicyConfig] = None,
        subcluster: str = BURST_SUBCLUSTER,
    ):
        self.cluster = cluster
        self.actuator = actuator or TopologyActuator(cluster, subcluster=subcluster)
        self.policy = policy or ThresholdPolicy(config or PolicyConfig())
        self.telemetry = TelemetryCollector(
            cluster, subcluster=self.actuator.subcluster
        )
        self.ticks = 0
        self.decisions = {
            SCALE_OUT: 0,
            SCALE_IN: 0,
            HIBERNATE: 0,
            REVIVE: 0,
            HOLD: 0,
        }
        self.last_sample: Optional[TelemetrySample] = None
        self.last_decision: Optional[Decision] = None
        # Registered so v_monitor.autoscale_events and cluster_metrics can
        # find the scaler without the cluster owning one.
        cluster.autoscaler = self

    @property
    def events(self):
        return self.actuator.events

    def status(self) -> ScalerStatus:
        return ScalerStatus(
            size=self.actuator.size(),
            hibernated=self.actuator.hibernated,
            hibernating=self.actuator.hibernating,
            pending_removals=len(self.actuator.pending_removals),
        )

    def run(self) -> Decision:
        """One control-loop tick; see module docstring for the order."""
        self.ticks += 1
        self.actuator.repair()
        self.actuator.complete_removals()
        sample = self.telemetry.sample()
        decision = self.policy.decide(sample, self.status())
        self._act(decision)
        self.last_sample = sample
        self.last_decision = decision
        self.decisions[decision.action] = (
            self.decisions.get(decision.action, 0) + 1
        )
        self._publish(sample, decision)
        return decision

    def _act(self, decision: Decision) -> None:
        if decision.action == SCALE_OUT:
            self.actuator.scale_out(decision.count)
        elif decision.action == SCALE_IN:
            self.actuator.scale_in(decision.count)
        elif decision.action == HIBERNATE:
            self.actuator.hibernate()
        elif decision.action == REVIVE:
            self.actuator.revive(decision.count)

    def _publish(self, sample: TelemetrySample, decision: Decision) -> None:
        obs = getattr(self.cluster, "obs", None)
        if obs is None or not getattr(obs, "enabled", False):
            return
        obs.metrics.counter("autoscale.ticks").inc()
        obs.metrics.counter("autoscale.decisions", action=decision.action).inc()
        obs.metrics.gauge("autoscale.managed_nodes").set(self.actuator.size())
        obs.metrics.gauge("autoscale.pending_removals").set(
            len(self.actuator.pending_removals)
        )
        obs.metrics.gauge("autoscale.pressure").set(sample.pressure)
        obs.metrics.gauge("autoscale.queue_depth").set(sample.queue_depth)
        obs.metrics.gauge("autoscale.depot_hit_rate").set(sample.depot_hit_rate)

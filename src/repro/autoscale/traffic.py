"""Diurnal/bursty traffic shaping for the closed-loop driver.

The 24h trace is a sequence of fixed-length epochs; each epoch gets a
client count from a deterministic diurnal curve (night trough, morning
ramp, daytime plateau, evening ramp-down) plus seeded random bursts —
the thundering-herd moments that make an autoscaler earn its keep.
Burst draws come from the generator's own ``random.Random(seed)``
stream, consumed strictly one draw per epoch in order, so a profile is a
pure function of ``(seed, epoch_index)`` history and two runs of the
same trace see identical offered load.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class TrafficProfile:
    """Shape of one day of offered load."""

    #: Clients during the night trough (0 lets subclusters hibernate).
    night_clients: int = 0
    #: Clients on the daytime plateau.
    peak_clients: int = 24
    #: Probability an epoch's load spikes (drawn per epoch).
    burst_probability: float = 0.1
    #: Spike multiplier applied to the diurnal value.
    burst_multiplier: float = 2.0
    #: Simulated seconds per epoch.
    epoch_seconds: float = 900.0
    seed: int = 0

    #: Diurnal breakpoints (hours): trough end, plateau start, plateau
    #: end, trough start.
    ramp_up_start: float = 6.0
    plateau_start: float = 10.0
    plateau_end: float = 18.0
    ramp_down_end: float = 22.0

    def shape(self, hour: float) -> float:
        """Piecewise-linear diurnal intensity in [0, 1]."""
        h = hour % 24.0
        if h < self.ramp_up_start or h >= self.ramp_down_end:
            return 0.0
        if h < self.plateau_start:
            return (h - self.ramp_up_start) / (
                self.plateau_start - self.ramp_up_start
            )
        if h < self.plateau_end:
            return 1.0
        return (self.ramp_down_end - h) / (
            self.ramp_down_end - self.plateau_end
        )


class TrafficGenerator:
    """Yields per-epoch client counts for one simulated day (or more).

    Call :meth:`clients_for_epoch` with consecutive epoch indices (the
    trace runner does); each call consumes exactly one burst draw, which
    is what keeps the schedule reproducible.
    """

    def __init__(self, profile: TrafficProfile = TrafficProfile()):
        self.profile = profile
        self.rng = random.Random(profile.seed ^ 0xD1C0FFEE)
        self.bursts = 0

    def clients_for_epoch(self, index: int) -> int:
        profile = self.profile
        hour = index * profile.epoch_seconds / 3600.0
        base = profile.night_clients + profile.shape(hour) * (
            profile.peak_clients - profile.night_clients
        )
        clients = int(round(base))
        # One draw per epoch, burst or not: the stream position depends
        # only on how many epochs have been generated.
        draw = self.rng.random()
        if clients > 0 and draw < profile.burst_probability:
            clients = int(round(clients * profile.burst_multiplier))
            self.bursts += 1
        return clients

    def day(self, epochs_per_day: int = 96) -> List[int]:
        """Convenience: the whole day's client counts at once."""
        return [self.clients_for_epoch(i) for i in range(epochs_per_day)]

"""repro.autoscale — closed-loop elastic autoscaler (ROADMAP item 1).

From telemetry to topology: a policy service that watches the workload
manager's queue telemetry plus depot hit rates and drives the cluster's
elasticity paths live — scale out with peer depot warming, scale in by
draining admission first, hibernate idle subclusters to shared storage,
revive on demand.  Grounded in the Eon paper's subcluster elasticity
(sections 4.3 and 6.4) and *Taurus Database*'s framing of compute
elasticity as the frugality lever: hold the latency SLO at minimum
node-seconds.
"""

from repro.autoscale.actuator import (
    BURST_SUBCLUSTER,
    AutoscaleEvent,
    TopologyActuator,
)
from repro.autoscale.driver import (
    NODE_DOLLARS_PER_HOUR,
    EpochStats,
    TraceResult,
    run_trace,
)
from repro.autoscale.policy import (
    Decision,
    PolicyConfig,
    PolicyEngine,
    ScalerStatus,
    ThresholdPolicy,
)
from repro.autoscale.service import Autoscaler
from repro.autoscale.telemetry import TelemetryCollector, TelemetrySample
from repro.autoscale.traffic import TrafficGenerator, TrafficProfile

__all__ = [
    "Autoscaler",
    "AutoscaleEvent",
    "BURST_SUBCLUSTER",
    "Decision",
    "EpochStats",
    "NODE_DOLLARS_PER_HOUR",
    "PolicyConfig",
    "PolicyEngine",
    "ScalerStatus",
    "TelemetryCollector",
    "TelemetrySample",
    "ThresholdPolicy",
    "TopologyActuator",
    "TraceResult",
    "TrafficGenerator",
    "TrafficProfile",
    "run_trace",
]

"""Telemetry sampling for the autoscaler's control loop.

The workload manager's pool counters are *monotone* (admissions, queue
waits, sheds accumulate forever) and its slot gauges are *instantaneous*
(between closed-loop runs everything drains to zero — that is the
``wm-slot-accounting`` invariant).  A policy cannot act on either alone:
the monotone counters never come back down and the gauges are almost
always zero when the service tick happens to run between queries.  So
the collector keeps the last counter snapshot per pool and hands the
policy *deltas since the previous tick* — admissions granted, queue
waits accrued, overload rejections (timeouts + sheds + queue-full) —
alongside the instantaneous queue depth and slot utilization and the
managed subcluster's depot hit rate.  Deltas over a fixed control
interval are rates; the policy's thresholds are therefore per-tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class TelemetrySample:
    """Aggregate admission telemetry for one control-loop tick.

    Counter fields are deltas since the previous sample; ``queue_depth``,
    ``slots_in_use`` and ``slot_capacity`` are instantaneous.
    """

    at: float = 0.0
    admitted: int = 0
    queued_admissions: int = 0
    queue_wait_seconds: float = 0.0
    timeouts: int = 0
    sheds: int = 0
    queue_full: int = 0
    busy: int = 0
    queue_depth: int = 0
    slots_in_use: int = 0
    slot_capacity: int = 0
    #: Demand hit rate over the managed subcluster's depots (cluster-wide
    #: when the subcluster is empty); cumulative, for events/metrics.
    depot_hit_rate: float = 0.0

    @property
    def overload(self) -> int:
        """Rejections that mean 'capacity was not enough': queue timeouts,
        shed arrivals, and queue overflows.  ``busy`` is excluded — it is
        the synchronous path declining to wait, not saturation."""
        return self.timeouts + self.sheds + self.queue_full

    @property
    def pressure(self) -> float:
        """Fraction of granted admissions that had to queue first."""
        if self.admitted <= 0:
            return 1.0 if self.queue_depth > 0 else 0.0
        return self.queued_admissions / self.admitted

    @property
    def avg_wait_seconds(self) -> float:
        """Mean queue wait per granted admission this tick."""
        if self.admitted <= 0:
            return 0.0
        return self.queue_wait_seconds / self.admitted

    @property
    def utilization(self) -> float:
        if self.slot_capacity <= 0:
            return 0.0
        return self.slots_in_use / self.slot_capacity

    @property
    def idle(self) -> bool:
        """No demand at all this tick."""
        return (
            self.admitted == 0
            and self.queued_admissions == 0
            and self.queue_depth == 0
            and self.overload == 0
        )


#: Pool counter names snapshotted for delta computation.
_COUNTERS = (
    "admitted",
    "queued_admissions",
    "queue_wait_seconds",
    "timeouts",
    "sheds",
    "rejected_queue_full",
    "rejected_busy",
)


@dataclass
class _PoolSnapshot:
    values: Dict[str, float] = field(default_factory=dict)


class TelemetryCollector:
    """Delta-based sampler over the admission controller's pools."""

    def __init__(self, cluster, subcluster: str = ""):
        self.cluster = cluster
        #: The managed subcluster whose depot hit rate matters most.
        self.subcluster = subcluster
        self._last: Dict[str, _PoolSnapshot] = {}

    def sample(self) -> TelemetrySample:
        admission = self.cluster.admission
        admission.refresh()
        out = TelemetrySample(at=self.cluster.clock.now)
        for name in sorted(admission.pools):
            pool = admission.pools[name]
            last = self._last.setdefault(name, _PoolSnapshot())
            for counter in _COUNTERS:
                value = getattr(pool, counter)
                delta = value - last.values.get(counter, 0)
                last.values[counter] = value
                if counter == "queue_wait_seconds":
                    out.queue_wait_seconds += delta
                elif counter == "rejected_queue_full":
                    out.queue_full += int(delta)
                elif counter == "rejected_busy":
                    out.busy += int(delta)
                else:
                    setattr(out, counter, getattr(out, counter) + int(delta))
            out.queue_depth += pool.queued
            out.slots_in_use += admission.pool_in_use(pool)
            out.slot_capacity += admission.pool_capacity(pool)
        out.depot_hit_rate = self._depot_hit_rate()
        return out

    def _depot_hit_rate(self) -> float:
        members = self.cluster.subclusters.get(self.subcluster) or set(
            self.cluster.nodes
        )
        hits = misses = 0
        for name in members:
            node = self.cluster.nodes.get(name)
            if node is None:
                continue
            hits += node.cache.stats.hits
            misses += node.cache.stats.misses
        total = hits + misses
        return hits / total if total else 0.0

"""Scaling policy: thresholds, hysteresis, cooldown.

The control loop is deliberately boring — *Taurus Database* (PAPERS.md)
frames elasticity as a frugality problem, and frugality wants a policy
whose every move is explainable after the fact.  The default
:class:`ThresholdPolicy` is a vote-counting hysteresis machine:

* a tick whose telemetry breaches the overload thresholds casts an *up*
  vote; ``up_votes`` consecutive votes trigger a scale-out;
* a quiet tick casts a *down* vote; ``down_votes`` consecutive votes
  trigger a scale-in (slower down than up — capacity mistakes in the
  shrink direction cost SLO, mistakes in the grow direction cost only
  dollars);
* a completely idle tick also casts a *hibernate* vote; a long idle
  streak puts the whole managed subcluster to sleep on shared storage;
* queued demand while hibernated triggers an immediate *revive* — the
  one decision that bypasses the cooldown, because a cooldown that
  delays wake-up turns frugality into an outage.

Any breach in the opposite direction resets a streak, and every
actuation starts a cooldown window during which the policy holds — the
classic guard against relay oscillation.  The engine is pluggable:
anything with ``decide(sample, status) -> Decision`` can drive the
actuator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autoscale.telemetry import TelemetrySample

#: Decision.action values.
HOLD = "hold"
SCALE_OUT = "scale_out"
SCALE_IN = "scale_in"
HIBERNATE = "hibernate"
REVIVE = "revive"

ACTIONS = (HOLD, SCALE_OUT, SCALE_IN, HIBERNATE, REVIVE)


@dataclass(frozen=True)
class PolicyConfig:
    """Thresholds and hysteresis for :class:`ThresholdPolicy`."""

    #: Mean queue wait per admission (seconds/tick) above which a tick
    #: votes to scale out.
    target_wait_seconds: float = 5.0
    #: Fraction of admissions that queued above which a tick votes up.
    scale_out_pressure: float = 0.5
    #: Pressure at or below which a tick is quiet (votes down).
    scale_in_pressure: float = 0.05
    #: Consecutive up votes required before acting (fast up).
    up_votes: int = 2
    #: Consecutive down votes required before acting (slow down).
    down_votes: int = 3
    #: Consecutive fully idle ticks before hibernating the managed
    #: subcluster; 0 disables hibernation.
    hibernate_idle_votes: int = 6
    #: Seconds after any actuation during which the policy holds.
    cooldown_seconds: float = 600.0
    #: Managed-subcluster size bounds and per-action step.
    min_nodes: int = 0
    max_nodes: int = 4
    scale_step: int = 2


@dataclass(frozen=True)
class Decision:
    """What the policy wants done this tick (and why, for the events)."""

    action: str = HOLD
    count: int = 0
    reason: str = ""


@dataclass(frozen=True)
class ScalerStatus:
    """The actuator-side state the policy needs to decide."""

    #: Current managed-subcluster size (members not yet being removed).
    size: int = 0
    hibernated: bool = False
    #: A hibernate's drain is still in flight.
    hibernating: bool = False
    pending_removals: int = 0


class PolicyEngine:
    """Interface: map (telemetry, scaler status) to a :class:`Decision`."""

    def decide(self, sample: TelemetrySample, status: ScalerStatus) -> Decision:
        raise NotImplementedError


class ThresholdPolicy(PolicyEngine):
    """Threshold + consecutive-vote hysteresis + cooldown (see module
    docstring for the state machine)."""

    def __init__(self, config: PolicyConfig = PolicyConfig()):
        self.config = config
        self._up = 0
        self._down = 0
        self._idle = 0
        self.last_action_at = float("-inf")

    def _acted(self, now: float) -> None:
        self._up = self._down = self._idle = 0
        self.last_action_at = now

    def decide(self, sample: TelemetrySample, status: ScalerStatus) -> Decision:
        cfg = self.config
        now = sample.at
        overloaded = (
            sample.overload > 0
            or sample.avg_wait_seconds > cfg.target_wait_seconds
            or sample.pressure > cfg.scale_out_pressure
            or sample.queue_depth > 0
        )
        demand = sample.admitted > 0 or sample.queue_depth > 0
        # Wake-up outranks everything: demand against a hibernated (or
        # mid-hibernate) subcluster revives immediately, cooldown or not.
        if (status.hibernated or status.hibernating) and demand:
            self._acted(now)
            return Decision(
                REVIVE,
                count=max(cfg.min_nodes, cfg.scale_step),
                reason="demand while hibernated",
            )
        if now - self.last_action_at < cfg.cooldown_seconds:
            return Decision(HOLD, reason="cooldown")
        if overloaded:
            self._up += 1
            self._down = 0
            self._idle = 0
            if self._up < cfg.up_votes:
                return Decision(
                    HOLD, reason=f"overload vote {self._up}/{cfg.up_votes}"
                )
            room = cfg.max_nodes - status.size
            if room <= 0:
                return Decision(HOLD, reason="overloaded but at max_nodes")
            self._acted(now)
            return Decision(
                SCALE_OUT,
                count=min(cfg.scale_step, room),
                reason=(
                    f"wait {sample.avg_wait_seconds:.2f}s, "
                    f"pressure {sample.pressure:.2f}, "
                    f"overload {sample.overload}"
                ),
            )
        self._up = 0
        self._idle = self._idle + 1 if sample.idle else 0
        quiet = (
            sample.pressure <= cfg.scale_in_pressure
            and sample.overload == 0
            and sample.queue_depth == 0
        )
        self._down = self._down + 1 if quiet else 0
        shrinkable = status.size - cfg.min_nodes
        if shrinkable > 0 and self._down >= cfg.down_votes:
            self._acted(now)
            return Decision(
                SCALE_IN,
                count=min(cfg.scale_step, shrinkable),
                reason=f"quiet for {cfg.down_votes} ticks",
            )
        if (
            cfg.hibernate_idle_votes
            and status.size > 0
            and not status.hibernated
            and not status.hibernating
            and self._idle >= cfg.hibernate_idle_votes
        ):
            self._acted(now)
            return Decision(
                HIBERNATE,
                count=status.size,
                reason=f"idle for {cfg.hibernate_idle_votes} ticks",
            )
        return Decision(HOLD, reason="steady")

"""The 24h-trace runner: diurnal load, epoch-by-epoch, on the SimClock.

A trace is a sequence of epochs.  Each epoch: advance the clock to the
epoch boundary, give the autoscaler one control-loop tick, then run that
epoch's offered load through the closed-loop driver (the real query
path, real admission queueing).  Node-seconds are integrated piecewise —
topology only changes at tick boundaries, so the integral is exact —
and every completed request's row digest is recorded under its
``(epoch, client, request)`` coordinate, which is what makes the
autoscaled run byte-comparable to a static-topology serial reference:
row content is topology-independent, so elasticity must not change a
single digest.

The scaler is ticked *between* epochs rather than as a free-running
clock process because :func:`~repro.wm.driver.run_closed_loop` drains
the event loop (a service loop on the same clock would spin forever).
The :class:`~repro.cluster.services.ServiceScheduler` integration is the
production path; this runner is the measurement path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.autoscale.service import Autoscaler
from repro.autoscale.traffic import TrafficGenerator
from repro.wm.driver import ClosedLoopWorkload, run_closed_loop, run_serial_reference

#: On-demand price per node-hour (r4.4xlarge-class, the paper's EC2 era).
NODE_DOLLARS_PER_HOUR = 1.064


@dataclass
class EpochStats:
    """One epoch's outcome."""

    index: int
    start_seconds: float
    clients: int
    nodes: int
    completed: int = 0
    rejected: int = 0
    errors: int = 0
    p99_seconds: float = 0.0


@dataclass
class TraceResult:
    """Everything the bench compares between autoscaled and static runs."""

    epochs: List[EpochStats] = field(default_factory=list)
    node_seconds: float = 0.0
    completed: int = 0
    rejected: int = 0
    errors: int = 0
    stalled: int = 0
    latencies: List[float] = field(default_factory=list)
    #: (epoch, client, request) -> row digest for every ok request.
    digests: Dict[Tuple[int, int, int], object] = field(default_factory=dict)

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[index]

    @property
    def p99_seconds(self) -> float:
        return self.percentile(0.99)

    def slo_attainment(self, slo_seconds: float) -> float:
        if not self.latencies:
            return 1.0
        within = sum(1 for lat in self.latencies if lat <= slo_seconds)
        return within / len(self.latencies)

    @property
    def node_dollars(self) -> float:
        return self.node_seconds / 3600.0 * NODE_DOLLARS_PER_HOUR


def _p99(values: List[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(0.99 * (len(ordered) - 1) + 0.5))]


def run_trace(
    cluster,
    traffic: TrafficGenerator,
    statements: Tuple[str, ...],
    epochs: int,
    scaler: Optional[Autoscaler] = None,
    serial: bool = False,
    requests_per_client: int = 1,
    service_scale: float = 1.0,
    seed: int = 0,
    result_key: Optional[Callable[[object], object]] = None,
) -> TraceResult:
    """Run ``epochs`` epochs of ``traffic`` against ``cluster``.

    ``scaler=None`` is the static baseline (topology never changes);
    ``serial=True`` replaces the closed loop with the one-at-a-time
    serial reference (identical per-request seeds, so digests align).
    """
    clock = cluster.clock
    epoch_seconds = traffic.profile.epoch_seconds
    start = clock.now
    result = TraceResult()
    last_mark = clock.now

    def up_nodes() -> int:
        return sum(1 for n in cluster.nodes.values() if n.is_up)

    def accrue() -> None:
        nonlocal last_mark
        result.node_seconds += up_nodes() * (clock.now - last_mark)
        last_mark = clock.now

    for index in range(epochs):
        target = start + index * epoch_seconds
        if target > clock.now:
            accrue()  # close the segment at the old node count
            clock.run(until=target)
            accrue()
        if scaler is not None:
            accrue()
            scaler.run()
            accrue()  # topology may have changed; restart the segment
        clients = traffic.clients_for_epoch(index)
        epoch = EpochStats(
            index=index,
            start_seconds=clock.now,
            clients=clients,
            nodes=up_nodes(),
        )
        if clients > 0:
            workload = ClosedLoopWorkload(
                statements=statements,
                clients=clients,
                requests_per_client=requests_per_client,
                seed=seed * 1_000_003 + index,
                service_scale=service_scale,
            )
            runner = run_serial_reference if serial else run_closed_loop
            run = runner(cluster, workload, result_key=result_key)
            accrue()
            epoch.completed = run.completed
            epoch.rejected = run.rejected
            epoch.errors = run.errors
            result.completed += run.completed
            result.rejected += run.rejected
            result.errors += run.errors
            result.stalled += run.stalled
            ok_latencies = []
            for record in run.records:
                if record.outcome != "ok":
                    continue
                ok_latencies.append(record.latency_seconds)
                result.digests[(index, record.client, record.request)] = (
                    record.digest
                )
            epoch.p99_seconds = _p99(ok_latencies)
            result.latencies.extend(ok_latencies)
        result.epochs.append(epoch)
    # Close the trailing segment to the nominal end of the trace.
    end = start + epochs * epoch_seconds
    if end > clock.now:
        accrue()
        clock.run(until=end)
    accrue()
    return result

"""Topology actuation: the multi-step transitions behind each decision.

Every autoscale action is a *sequence* of cluster operations, any of
which can fail mid-flight (a commit hits an S3 outage, a node dies while
subscribing).  The actuator's safety argument rests on three rules:

1. **Monotone names.** Managed nodes are named ``<prefix>0, <prefix>1,
   ...`` from a counter that never rewinds, so a retried scale-out can
   never collide with the debris of a failed one.
2. **Drain before remove.** Scale-in marks the managed pool draining
   (new admissions are refused and sessions are steered elsewhere) and
   only removes a victim once its slot count is zero — which the
   ``wm-slot-accounting`` invariant guarantees happens at rest.  A
   removal therefore never yanks slots from under a running query.
3. **Repair first.** Every control-loop tick starts by finishing what a
   previous tick left half-done: partially added nodes are rolled back
   along Figure-4-legal transitions (PENDING/PASSIVE drop by commit,
   REMOVING completes, ACTIVE unsubscribes behind the coverage check),
   and drained victims whose slots have emptied are removed.  Chaos can
   interrupt any step; it can only ever leave work for the next tick.

Hibernation persists a manifest to shared storage *before* draining, so
a crash mid-hibernate can always be revived from the newest manifest —
the same latest-sequenced-object-wins discipline as ``cluster_info``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.catalog.mvcc import op_drop_subscription
from repro.errors import ReproError, ShardCoverageLost
from repro.sharding.subscription import SubscriptionState
from repro.shared_storage.api import retrying

#: Default name of the managed subcluster (and its node-name prefix).
BURST_SUBCLUSTER = "burst"

#: Shared-storage prefix for hibernation manifests.
HIBERNATE_PREFIX = "autoscale_hibernate_"


@dataclass(frozen=True)
class AutoscaleEvent:
    """One actuation step, for ``v_monitor.autoscale_events``."""

    event_id: int
    at_seconds: float
    action: str
    subcluster: str
    node: str
    outcome: str
    detail: str = ""


class TopologyActuator:
    """Sequences scale-out / scale-in / hibernate / revive against one
    managed subcluster, tolerating interruption at every step."""

    def __init__(
        self,
        cluster,
        subcluster: str = BURST_SUBCLUSTER,
        node_prefix: Optional[str] = None,
        max_events: int = 512,
    ):
        self.cluster = cluster
        self.subcluster = subcluster
        self.node_prefix = node_prefix or subcluster
        self.max_events = max_events
        #: Never-reused suffix for managed node names (safety rule 1).
        self._next_node = 0
        #: Drained victims awaiting an idle slot count (safety rule 2).
        self.pending_removals: List[str] = []
        #: Nodes a failed scale-out may have left half-created.
        self.incomplete: List[str] = []
        self.hibernated = False
        #: Hibernate decided, members still draining.
        self.hibernating = False
        self.events: List[AutoscaleEvent] = []
        self._event_ids = 0
        #: Node names removed by the most recent actuation pass — the sim
        #: action uses this to release pins touching removed nodes.
        self.last_removed: List[str] = []

    # -- introspection -----------------------------------------------------------

    def members(self) -> List[str]:
        return sorted(self.cluster.subclusters.get(self.subcluster, set()))

    def size(self) -> int:
        """Members not already condemned to removal."""
        condemned = set(self.pending_removals)
        return sum(1 for m in self.members() if m not in condemned)

    def _event(self, action: str, node: str = "", outcome: str = "ok",
               detail: str = "") -> None:
        self._event_ids += 1
        self.events.append(
            AutoscaleEvent(
                event_id=self._event_ids,
                at_seconds=self.cluster.clock.now,
                action=action,
                subcluster=self.subcluster,
                node=node,
                outcome=outcome,
                detail=detail,
            )
        )
        del self.events[: -self.max_events]

    # -- scale out ---------------------------------------------------------------

    def scale_out(self, count: int) -> List[str]:
        """Add ``count`` nodes to the managed subcluster, each subscribed
        to balanced shards and depot-warmed from peers.  A node that fails
        partway is queued for repair; the others still land."""
        added: List[str] = []
        self.hibernated = False
        self.hibernating = False
        for _ in range(max(0, count)):
            name = f"{self.node_prefix}{self._next_node}"
            self._next_node += 1
            try:
                self.cluster.add_node(
                    name, warm_cache=True, subcluster=self.subcluster
                )
                added.append(name)
                self._event("scale_out", node=name)
            except ReproError as exc:
                if name in self.cluster.nodes:
                    self.incomplete.append(name)
                self._event(
                    "scale_out",
                    node=name,
                    outcome=f"error:{type(exc).__name__}",
                    detail=str(exc),
                )
        self.cluster.admission.refresh()
        return added

    # -- scale in ----------------------------------------------------------------

    def scale_in(self, count: int) -> List[str]:
        """Begin removing up to ``count`` members: newest first, up only,
        never below quorum or shard coverage.  The victims drain through
        admission; :meth:`complete_removals` finishes the job once their
        slots are empty."""
        cluster = self.cluster
        condemned = set(self.pending_removals)
        candidates = [
            m
            for m in reversed(self.members())
            if m not in condemned and cluster.nodes[m].is_up
        ]
        victims: List[str] = []
        for name in candidates:
            if len(victims) >= count:
                break
            if self._removal_safe(victims + [name]):
                victims.append(name)
        if not victims:
            self._event("scale_in", outcome="refused",
                        detail="no safely removable member")
            return []
        cluster.admission.set_draining(self.subcluster, True)
        for name in victims:
            self.pending_removals.append(name)
            self._event("scale_in", node=name, outcome="draining")
        self.complete_removals()
        return victims

    def _removal_safe(self, victims: List[str]) -> bool:
        """Would removing ``victims`` keep quorum and shard coverage?"""
        cluster = self.cluster
        gone = set(victims)
        up_after = sum(
            1 for n in cluster.nodes.values() if n.is_up and n.name not in gone
        )
        total_after = len(cluster.nodes) - len(gone)
        if total_after <= 0 or up_after * 2 <= total_after:
            return False
        for shard_id in cluster.shard_map.all_shard_ids():
            survivors = [
                n
                for n in cluster.active_up_subscribers(shard_id)
                if n not in gone
            ]
            if not survivors:
                return False
        return True

    def complete_removals(self) -> List[str]:
        """Remove drained victims whose slots have emptied; reopen the
        pool once nothing is left draining.  Re-entrant and chaos-safe:
        a victim that is still busy (or whose removal raises) simply
        stays queued for the next tick."""
        cluster = self.cluster
        removed: List[str] = []
        for name in list(self.pending_removals):
            if name not in cluster.nodes:
                self.pending_removals.remove(name)
                continue
            if cluster.admission.slots_in_use(name) > 0:
                continue
            try:
                self._force_remove(name)
            except ReproError as exc:
                self._event(
                    "remove",
                    node=name,
                    outcome=f"error:{type(exc).__name__}",
                    detail=str(exc),
                )
                continue
            self.pending_removals.remove(name)
            removed.append(name)
            self._event("remove", node=name)
        if not self.pending_removals:
            if self.hibernating and not self.members():
                self.hibernated = True
                self.hibernating = False
                self._event("hibernate", outcome="ok", detail="subcluster empty")
            if not self.hibernating:
                cluster.admission.set_draining(self.subcluster, False)
        self.last_removed = removed
        return removed

    def _force_remove(self, name: str) -> None:
        """Remove a node whatever state its subscriptions are in, using
        only Figure-4-legal transitions (see module docstring, rule 3)."""
        cluster = self.cluster
        state = cluster.any_up_node().catalog.state
        subs = {
            shard: SubscriptionState(st)
            for (n, shard), st in state.subscriptions.items()
            if n == name
        }
        for shard_id in sorted(subs):
            current = subs[shard_id]
            if current is SubscriptionState.ACTIVE:
                others = [
                    n
                    for n in cluster.active_up_subscribers(shard_id)
                    if n != name
                ]
                if not others:
                    raise ShardCoverageLost(
                        f"cannot remove {name}: sole ACTIVE subscriber of "
                        f"shard {shard_id}"
                    )
                cluster.unsubscribe(name, shard_id)
            elif current is SubscriptionState.REMOVING:
                cluster._drop_subscription(name, shard_id)
            else:
                # PENDING / PASSIVE: both may legally drop to None with a
                # plain drop commit (no REMOVING detour, which Figure 4
                # forbids from PENDING).
                txn = cluster.begin()
                txn.add_op(op_drop_subscription(name, shard_id))
                cluster.commit(txn)
        cluster.nodes.pop(name, None)
        for members in cluster.subclusters.values():
            members.discard(name)
        cluster.admission.refresh()

    # -- repair ------------------------------------------------------------------

    def repair(self) -> int:
        """Roll back nodes a failed scale-out left half-created.  Runs at
        the top of every tick; anything that still fails stays queued."""
        fixed = 0
        for name in list(self.incomplete):
            if name not in self.cluster.nodes:
                self.incomplete.remove(name)
                continue
            try:
                self._force_remove(name)
            except ReproError as exc:
                self._event(
                    "repair",
                    node=name,
                    outcome=f"error:{type(exc).__name__}",
                    detail=str(exc),
                )
                continue
            self.incomplete.remove(name)
            fixed += 1
            self._event("repair", node=name, detail="rolled back partial add")
        return fixed

    # -- hibernate / revive ------------------------------------------------------

    def _manifest_name(self) -> str:
        prefix = f"{HIBERNATE_PREFIX}{self.subcluster}_"
        existing = retrying(
            lambda: self.cluster.shared.list(prefix), self.cluster.shared.metrics
        )
        next_seq = 1
        if existing:
            last = existing[-1][len(prefix):].split(".")[0]
            next_seq = int(last) + 1
        return f"{prefix}{next_seq:012d}.json"

    def hibernate(self) -> bool:
        """Put the managed subcluster to sleep: persist a manifest, then
        drain and remove every member.  The manifest goes first so a
        crash anywhere later still leaves a revivable record."""
        if self.hibernated or self.hibernating:
            return False
        members = self.members()
        if not members:
            return False
        doc = {
            "subcluster": self.subcluster,
            "node_count": len(members),
            "at_seconds": self.cluster.clock.now,
        }
        name = self._manifest_name()
        retrying(
            lambda: self.cluster.shared.write(
                name, json.dumps(doc).encode("utf-8")
            ),
            self.cluster.shared.metrics,
        )
        self._event("hibernate", outcome="draining",
                    detail=f"manifest {name}, {len(members)} nodes")
        self.hibernating = True
        self.cluster.admission.set_draining(self.subcluster, True)
        condemned = set(self.pending_removals)
        for member in reversed(members):
            if member not in condemned:
                self.pending_removals.append(member)
        self.complete_removals()
        return True

    def read_manifest(self) -> Optional[Dict]:
        """Newest hibernation manifest, or None.  The *listing* is an
        out-of-band peek (crash-recovery metadata, like revive's
        discovery scan); the read is a charged request."""
        prefix = f"{HIBERNATE_PREFIX}{self.subcluster}_"
        names = self.cluster.shared.peek(prefix)
        if not names:
            return None
        data = retrying(
            lambda: self.cluster.shared.read(names[-1]),
            self.cluster.shared.metrics,
        )
        return json.loads(data.decode("utf-8"))

    def revive(self, default_count: int = 1) -> List[str]:
        """Wake the managed subcluster.  Mid-hibernate (members still
        draining) the drain is simply aborted — nothing was unsubscribed
        yet, so cancelling the removals restores full service instantly.
        From a completed hibernate, scale back out to the manifest's
        recorded size (falling back to ``default_count``)."""
        if self.hibernating and self.pending_removals:
            aborted = list(self.pending_removals)
            self.pending_removals.clear()
            self.hibernating = False
            self.cluster.admission.set_draining(self.subcluster, False)
            self._event("revive", outcome="ok",
                        detail=f"aborted in-flight hibernate of {aborted}")
            return []
        count = default_count
        try:
            manifest = self.read_manifest()
        except ReproError:
            manifest = None
        if manifest is not None:
            count = int(manifest.get("node_count", default_count))
        self.hibernated = False
        self.hibernating = False
        self.cluster.admission.set_draining(self.subcluster, False)
        want = max(0, count - self.size())
        self._event("revive", detail=f"target {count} nodes")
        return self.scale_out(want)

"""repro — a reproduction of *Eon Mode: Bringing the Vertica Columnar
Database to the Cloud* (Vandiver et al., SIGMOD 2018).

Public API quick tour::

    from repro import EonCluster, EnterpriseCluster

    cluster = EonCluster(["n1", "n2", "n3"], shard_count=3)
    cluster.execute("create table t (a int, b varchar)")
    cluster.load("t", [(1, "x"), (2, "y")])
    result = cluster.query("select a, b from t order by a")
    print(result.rows.to_pylist())

See README.md for the architecture overview and DESIGN.md for the mapping
from paper sections to modules.
"""

from repro.cluster.enterprise import EnterpriseCluster
from repro.cluster.eon import EonCluster
from repro.cluster.node import Node
from repro.catalog.objects import Segmentation
from repro.common.clock import SimClock
from repro.common.types import ColumnType, TableSchema
from repro.obs import Observability
from repro.shared_storage.s3 import S3CostModel, S3LatencyModel, SimulatedS3
from repro.storage.container import RowSet

__version__ = "1.0.0"

__all__ = [
    "EonCluster",
    "EnterpriseCluster",
    "Node",
    "Observability",
    "Segmentation",
    "SimClock",
    "ColumnType",
    "TableSchema",
    "SimulatedS3",
    "S3LatencyModel",
    "S3CostModel",
    "RowSet",
    "__version__",
]

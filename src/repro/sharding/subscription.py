"""Subscription state machine (section 3.3, Figure 4).

A node that wants to serve a shard creates a subscription in PENDING; the
subscription service transfers metadata and marks it PASSIVE (it can now
participate in commits and be promoted if all other subscribers fail); the
cache-warming service optionally warms the cache and the subscription
becomes ACTIVE, serving queries.  Unsubscribing goes through REMOVING — the
node keeps serving queries until enough other ACTIVE subscribers exist,
then drops metadata and cache contents.

Node recovery demotes the node's ACTIVE subscriptions back to PENDING,
"effectively forcing a re-subscription" with incremental metadata and
cache transfer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Optional


class SubscriptionState(enum.Enum):
    PENDING = "PENDING"
    PASSIVE = "PASSIVE"
    ACTIVE = "ACTIVE"
    REMOVING = "REMOVING"

    @property
    def serves_queries(self) -> bool:
        """ACTIVE serves queries; REMOVING keeps serving until dropped."""
        return self in (SubscriptionState.ACTIVE, SubscriptionState.REMOVING)

    @property
    def participates_in_commit(self) -> bool:
        """PASSIVE and above receive shard metadata at commit (section 3.2)."""
        return self in (
            SubscriptionState.PASSIVE,
            SubscriptionState.ACTIVE,
            SubscriptionState.REMOVING,
        )


#: Legal transitions (Figure 4).  ``None`` stands for no subscription.
_TRANSITIONS: Dict[Optional[SubscriptionState], FrozenSet[Optional[SubscriptionState]]] = {
    None: frozenset({SubscriptionState.PENDING}),
    SubscriptionState.PENDING: frozenset(
        {SubscriptionState.PASSIVE, None}  # drop on failure to subscribe
    ),
    SubscriptionState.PASSIVE: frozenset(
        {
            SubscriptionState.ACTIVE,
            SubscriptionState.PENDING,  # recovery restart
            None,
        }
    ),
    SubscriptionState.ACTIVE: frozenset(
        {
            SubscriptionState.REMOVING,
            SubscriptionState.PENDING,  # node recovery: forced re-subscription
        }
    ),
    SubscriptionState.REMOVING: frozenset(
        {None, SubscriptionState.ACTIVE}  # removal abandoned -> serve again
    ),
}


def can_transition(
    current: Optional[SubscriptionState], target: Optional[SubscriptionState]
) -> bool:
    """True when ``current -> target`` is a legal Figure-4 transition.

    Recovery and rebalancing code branches on this instead of trying a
    transition and catching ``ValueError`` — e.g. a node that died
    mid-unsubscribe holds a REMOVING subscription, for which the recovery
    path ``-> PENDING`` is illegal and the removal must instead be
    completed or abandoned (``-> ACTIVE``).
    """
    return target in _TRANSITIONS[current]


def validate_transition(
    current: Optional[SubscriptionState], target: Optional[SubscriptionState]
) -> None:
    """Raise ``ValueError`` on an illegal Figure-4 transition."""
    allowed = _TRANSITIONS[current]
    if target not in allowed:
        raise ValueError(
            f"illegal subscription transition {current} -> {target}; "
            f"allowed: {sorted(str(s) for s in allowed)}"
        )


@dataclass(frozen=True)
class Subscription:
    """One (node, shard) subscription edge."""

    node: str
    shard_id: int
    state: SubscriptionState

    def transitioned(self, target: SubscriptionState) -> "Subscription":
        validate_transition(self.state, target)
        return replace(self, state=target)

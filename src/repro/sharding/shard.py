"""Segment shards over the 32-bit hash space (section 3.1, Figure 3).

"Eon mode explicitly has segment shards that logically contain any metadata
object referring to storage of tuples that hash to a specific region ...
The number of segment shards is fixed at database creation.  Replicated
projections have their storage metadata associated with a replica shard."

Shard ``i`` of ``S`` owns the contiguous hash region
``[i * 2^32 / S, (i + 1) * 2^32 / S)``.  The replica shard has the special
id :data:`REPLICA_SHARD_ID` and owns no hash region — every node that
subscribes to it holds all replicated-projection storage.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.common.hashing import HASH_SPACE, hash_columns, hash_row
from repro.storage.container import RowSet

#: Shard id used for replicated-projection storage.
REPLICA_SHARD_ID = -1


class ShardMap:
    """The fixed segmentation of the hash space into ``count`` shards."""

    def __init__(self, count: int):
        if count < 1:
            raise ValueError("shard count must be >= 1")
        self.count = count
        # Region boundaries: shard i owns [bounds[i], bounds[i+1]).
        self._bounds = [i * HASH_SPACE // count for i in range(count)] + [HASH_SPACE]

    def region_of(self, shard_id: int) -> Tuple[int, int]:
        """The [lo, hi) hash region a segment shard owns."""
        if not 0 <= shard_id < self.count:
            raise ValueError(f"no segment shard {shard_id}")
        return self._bounds[shard_id], self._bounds[shard_id + 1]

    def shard_of_hash(self, hash_value: int) -> int:
        """Which segment shard owns ``hash_value``."""
        if not 0 <= hash_value < HASH_SPACE:
            raise ValueError(f"hash {hash_value} outside 32-bit space")
        # Regions are near-equal size; a direct computation with boundary
        # correction avoids a binary search.
        shard = min(hash_value * self.count // HASH_SPACE, self.count - 1)
        while hash_value < self._bounds[shard]:
            shard -= 1
        while hash_value >= self._bounds[shard + 1]:
            shard += 1
        return shard

    def shard_of_row(self, seg_values: Sequence[object]) -> int:
        """Shard owning the row whose segmentation-column values are given."""
        return self.shard_of_hash(hash_row(seg_values))

    def shard_ids(self) -> List[int]:
        return list(range(self.count))

    def all_shard_ids(self) -> List[int]:
        """Segment shards plus the replica shard."""
        return self.shard_ids() + [REPLICA_SHARD_ID]

    # -- bulk operations -------------------------------------------------------

    def hash_rowset(self, rowset: RowSet, seg_columns: Sequence[str]) -> np.ndarray:
        """32-bit hash of each row's segmentation key."""
        cols = [rowset.column(c) for c in seg_columns]
        return hash_columns(cols)

    def shards_of_rowset(
        self, rowset: RowSet, seg_columns: Sequence[str]
    ) -> np.ndarray:
        """Owning shard id of each row."""
        hashes = self.hash_rowset(rowset, seg_columns)
        shard = np.minimum(
            hashes * np.uint64(self.count) // np.uint64(HASH_SPACE),
            np.uint64(self.count - 1),
        ).astype(np.int64)
        # Boundary correction (integer division of bounds may round).
        bounds = np.asarray(self._bounds, dtype=np.uint64)
        low = bounds[shard]
        shard = np.where(hashes < low, shard - 1, shard)
        high = bounds[shard + 1]
        shard = np.where(hashes >= high, shard + 1, shard)
        return shard.astype(np.int64)

    def split_rowset(
        self, rowset: RowSet, seg_columns: Sequence[str]
    ) -> Dict[int, RowSet]:
        """Partition a rowset by owning shard (the load-split of Figure 8).

        Only shards that receive at least one row appear in the result, so
        "storage containers contain data for exactly one shard" (section
        4.5) and no empty containers are created.
        """
        shards = self.shards_of_rowset(rowset, seg_columns)
        result: Dict[int, RowSet] = {}
        for shard_id in np.unique(shards):
            result[int(shard_id)] = rowset.filter(shards == shard_id)
        return result

    def hash_region_mask(
        self, rowset: RowSet, seg_columns: Sequence[str], shard_id: int
    ) -> np.ndarray:
        """Row mask selecting rows whose hash falls inside ``shard_id``.

        Used by crunch scaling's hash-filter split (section 4.4), where a
        further segmentation predicate is applied to rows as they are read.
        """
        return self.shards_of_rowset(rowset, seg_columns) == shard_id

    def __repr__(self) -> str:
        return f"ShardMap(count={self.count})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ShardMap) and other.count == self.count

"""Participating-subscription selection via max flow (section 4.1, Figure 6).

For each query session, Eon picks one serving node per shard from the
ACTIVE subscribers.  The constraints are encoded as a flow network:

    SOURCE --cap 1--> shard_i --cap 1--> node_j --cap max(S/N,1)--> SINK

where a shard->node edge exists iff node_j subscribes to shard_i.  A max
flow of S (the shard count) yields a complete assignment; the edges
carrying flow are the selected mapping.

Three refinements from the paper:

* **Balance rounds** — if the flow is short of S (asymmetric
  subscriptions), re-run max flow with node->SINK capacities incremented,
  "leaving the existing flow intact", until all shards are assigned with
  minimal skew.
* **Edge-order variation** — max flow is deterministic, so the order
  shard->node edges are created is shuffled per session; different sessions
  then spread load over different subscribers, "increasing query throughput
  because the same nodes are not full serving the same shards for all
  queries".
* **Priority tiers** — node->SINK edges are added tier by tier (e.g. the
  client's subcluster first, or same-rack nodes first); lower tiers join
  only if higher tiers cannot cover every shard.  This is the mechanism
  behind subcluster workload isolation (section 4.3).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro.errors import ShardCoverageLost
from repro.sharding.maxflow import FlowNetwork

_SOURCE = ("source",)
_SINK = ("sink",)


class AssignmentError(ShardCoverageLost):
    """No complete assignment of shards to nodes exists."""


def _shard_vertex(shard_id: int) -> tuple:
    return ("shard", shard_id)


def _node_vertex(node: str) -> tuple:
    return ("node", node)


def select_participating_subscriptions(
    shard_ids: Sequence[int],
    subscribers: Mapping[int, Iterable[str]],
    priority_tiers: Optional[Sequence[Set[str]]] = None,
    seed: int = 0,
) -> Dict[int, str]:
    """Choose one serving node per shard.

    Parameters
    ----------
    shard_ids:
        The segment shards the query must cover.
    subscribers:
        shard id -> nodes with an ACTIVE subscription to it.
    priority_tiers:
        Optional list of node sets, highest priority first.  Nodes absent
        from every tier form a final implicit tier.  With no tiers, all
        nodes join at once.
    seed:
        Session seed driving the edge-order variation.

    Returns
    -------
    dict mapping each shard id to its selected node.

    Raises
    ------
    AssignmentError
        if some shard has no subscriber in any tier.
    """
    shard_ids = list(shard_ids)
    if not shard_ids:
        return {}
    rng = random.Random(seed)
    network = FlowNetwork()
    all_nodes: List[str] = []
    seen_nodes: Set[str] = set()

    for shard_id in shard_ids:
        network.add_edge(_SOURCE, _shard_vertex(shard_id), 1)
        # Edge-order variation: shuffle the subscriber order per shard.
        nodes = list(subscribers.get(shard_id, ()))
        rng.shuffle(nodes)
        for node in nodes:
            network.add_edge(_shard_vertex(shard_id), _node_vertex(node), 1)
            if node not in seen_nodes:
                seen_nodes.add(node)
                all_nodes.append(node)

    tiers = _normalise_tiers(priority_tiers, all_nodes)
    target = len(shard_ids)
    attached: List[str] = []
    flow = 0

    for tier in tiers:
        tier_nodes = [n for n in all_nodes if n in tier and n not in attached]
        if not tier_nodes and attached:
            continue
        attached.extend(tier_nodes)
        if not attached:
            continue
        base = max(target // len(attached), 1)
        for node in attached:
            vertex = _node_vertex(node)
            if network.has_edge(vertex, _SINK):
                network.set_capacity(
                    vertex, _SINK, max(network.capacity(vertex, _SINK), base)
                )
            else:
                network.add_edge(vertex, _SINK, base)
        flow = network.max_flow(_SOURCE, _SINK)
        # Balance rounds: grow sink capacities one unit at a time so flow
        # spreads evenly before any node takes a second/third shard.
        capacity = base
        while flow < target and capacity < target:
            capacity += 1
            for node in attached:
                network.set_capacity(_node_vertex(node), _SINK, capacity)
            flow = network.max_flow(_SOURCE, _SINK)
        if flow == target:
            break

    if flow < target:
        missing = [
            shard_id
            for shard_id in shard_ids
            if network.flow(_SOURCE, _shard_vertex(shard_id)) == 0
        ]
        raise AssignmentError(
            f"no ACTIVE subscriber available for shards {missing}"
        )

    assignment: Dict[int, str] = {}
    for shard_id in shard_ids:
        shard_v = _shard_vertex(shard_id)
        for node in subscribers.get(shard_id, ()):
            node_v = _node_vertex(node)
            if network.has_edge(shard_v, node_v) and network.flow(shard_v, node_v) > 0:
                assignment[shard_id] = node
                break
    return assignment


def _normalise_tiers(
    priority_tiers: Optional[Sequence[Set[str]]], all_nodes: Sequence[str]
) -> List[Set[str]]:
    if not priority_tiers:
        return [set(all_nodes)]
    tiers = [set(t) for t in priority_tiers]
    covered: Set[str] = set().union(*tiers) if tiers else set()
    leftovers = {n for n in all_nodes if n not in covered}
    if leftovers:
        tiers.append(leftovers)
    return tiers


def assignment_skew(assignment: Mapping[int, str]) -> int:
    """Max minus min shards-per-node over nodes used; 0 is perfectly even."""
    if not assignment:
        return 0
    counts: Dict[str, int] = {}
    for node in assignment.values():
        counts[node] = counts.get(node, 0) + 1
    return max(counts.values()) - min(counts.values())


def naive_first_subscriber_assignment(
    shard_ids: Sequence[int], subscribers: Mapping[int, Iterable[str]]
) -> Dict[int, str]:
    """Baseline for the assignment ablation: first listed subscriber wins.

    This is what a system without the flow formulation would do; it piles
    shards onto early nodes when subscription lists overlap.
    """
    assignment = {}
    for shard_id in shard_ids:
        nodes = list(subscribers.get(shard_id, ()))
        if not nodes:
            raise AssignmentError(f"no subscriber for shard {shard_id}")
        assignment[shard_id] = nodes[0]
    return assignment

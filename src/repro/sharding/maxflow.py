"""Incremental max-flow (Edmonds–Karp) for session layout selection.

Section 4.1 runs "successive rounds of max flow, leaving the existing flow
intact while incrementally increasing the capacity" of edges, so the solver
must support (a) raising an edge's capacity after a run and (b) resuming
from the current flow.  Edmonds–Karp does both naturally: flow found so far
stays feasible when capacities only increase, and further augmenting paths
extend it.

The graphs here are tiny (source + shards + nodes + sink), so the BFS
implementation is more than fast enough and — crucially for the paper's
edge-order variation trick — fully deterministic in the order edges were
added.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

NodeId = Hashable


@dataclass
class _Edge:
    src: NodeId
    dst: NodeId
    capacity: int
    flow: int = 0

    @property
    def residual(self) -> int:
        return self.capacity - self.flow


class FlowNetwork:
    """Directed flow network with incremental max-flow."""

    def __init__(self) -> None:
        # adjacency: vertex -> list of (edge index, direction) where
        # direction +1 is forward, -1 is the residual (backward) arc.
        self._edges: List[_Edge] = []
        self._adj: Dict[NodeId, List[Tuple[int, int]]] = {}
        self._edge_index: Dict[Tuple[NodeId, NodeId], int] = {}

    def _vertex(self, v: NodeId) -> None:
        self._adj.setdefault(v, [])

    def add_edge(self, src: NodeId, dst: NodeId, capacity: int) -> None:
        """Add edge ``src -> dst``; adding an existing edge raises."""
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        key = (src, dst)
        if key in self._edge_index:
            raise ValueError(f"edge {src} -> {dst} already present")
        self._vertex(src)
        self._vertex(dst)
        index = len(self._edges)
        self._edges.append(_Edge(src, dst, capacity))
        self._adj[src].append((index, +1))
        self._adj[dst].append((index, -1))
        self._edge_index[key] = index

    def has_edge(self, src: NodeId, dst: NodeId) -> bool:
        return (src, dst) in self._edge_index

    def set_capacity(self, src: NodeId, dst: NodeId, capacity: int) -> None:
        """Raise (never lower below current flow) an edge's capacity."""
        edge = self._edges[self._edge_index[(src, dst)]]
        if capacity < edge.flow:
            raise ValueError(
                f"cannot set capacity {capacity} below current flow {edge.flow}"
            )
        edge.capacity = capacity

    def capacity(self, src: NodeId, dst: NodeId) -> int:
        return self._edges[self._edge_index[(src, dst)]].capacity

    def flow(self, src: NodeId, dst: NodeId) -> int:
        return self._edges[self._edge_index[(src, dst)]].flow

    def max_flow(self, source: NodeId, sink: NodeId) -> int:
        """Extend the current flow to maximum; returns the total flow.

        Safe to call repeatedly after capacity increases — existing flow is
        kept intact and only augmented.
        """
        self._vertex(source)
        self._vertex(sink)
        while True:
            path = self._bfs_augmenting_path(source, sink)
            if path is None:
                break
            bottleneck = min(
                (self._edges[i].residual if d > 0 else self._edges[i].flow)
                for i, d in path
            )
            for i, d in path:
                self._edges[i].flow += bottleneck * d
        return self.total_flow(source)

    def total_flow(self, source: NodeId) -> int:
        return sum(
            self._edges[i].flow * d
            for i, d in self._adj.get(source, [])
            if d > 0
        )

    def _bfs_augmenting_path(
        self, source: NodeId, sink: NodeId
    ) -> Optional[List[Tuple[int, int]]]:
        parents: Dict[NodeId, Tuple[NodeId, int, int]] = {}
        queue = deque([source])
        visited = {source}
        while queue:
            v = queue.popleft()
            for index, direction in self._adj[v]:
                edge = self._edges[index]
                other = edge.dst if direction > 0 else edge.src
                usable = edge.residual if direction > 0 else edge.flow
                if usable <= 0 or other in visited:
                    continue
                visited.add(other)
                parents[other] = (v, index, direction)
                if other == sink:
                    path = []
                    cur = sink
                    while cur != source:
                        prev, idx, d = parents[cur]
                        path.append((idx, d))
                        cur = prev
                    path.reverse()
                    return path
                queue.append(other)
        return None

    # -- introspection (used to read the selected mapping) --------------------

    def saturated_pairs(self) -> List[Tuple[NodeId, NodeId]]:
        """Edges carrying positive flow, in insertion order."""
        return [(e.src, e.dst) for e in self._edges if e.flow > 0]

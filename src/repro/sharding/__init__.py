"""Sharding: the core Eon-mode mechanism (sections 3 and 4.1).

* :class:`ShardMap` — fixed division of the 32-bit hash space into segment
  shards, plus the replica shard for replicated projections.
* :class:`SubscriptionState` / :class:`Subscription` — the node-to-shard
  subscription state machine of Figure 4.
* :func:`select_participating_subscriptions` — the max-flow session layout
  algorithm of Figure 6, with balance rounds, priority tiers, and
  edge-order variation.
"""

from repro.sharding.assignment import (
    AssignmentError,
    select_participating_subscriptions,
)
from repro.sharding.maxflow import FlowNetwork
from repro.sharding.shard import REPLICA_SHARD_ID, ShardMap
from repro.sharding.subscription import Subscription, SubscriptionState

__all__ = [
    "ShardMap",
    "REPLICA_SHARD_ID",
    "Subscription",
    "SubscriptionState",
    "FlowNetwork",
    "select_participating_subscriptions",
    "AssignmentError",
]

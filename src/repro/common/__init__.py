"""Shared low-level utilities: hashing, identifiers, types, simulated time."""

from repro.common.clock import SimClock
from repro.common.hashing import HASH_SPACE, hash_int, hash_row, hash_value
from repro.common.oid import OidGenerator, StorageId
from repro.common.types import ColumnType, SchemaColumn, TableSchema

__all__ = [
    "SimClock",
    "HASH_SPACE",
    "hash_int",
    "hash_row",
    "hash_value",
    "OidGenerator",
    "StorageId",
    "ColumnType",
    "SchemaColumn",
    "TableSchema",
]

"""Object identifiers and globally-unique storage identifiers (SIDs).

Section 5.1 / Figure 7 of the paper: a storage identifier combines a version
byte, a 120-bit random *node instance id* (regenerated each time the Vertica
process starts) and a 64-bit local catalog OID.  Node-instance randomness
makes SIDs globally unique without coordination, so every node can write
files into the single shared-storage namespace without collisions, and
cloned clusters keep generating distinct names.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field


@dataclass
class OidGenerator:
    """Monotonic 64-bit local object id counter, one per catalog."""

    start: int = 1
    _counter: "itertools.count[int]" = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._counter = itertools.count(self.start)

    def next_oid(self) -> int:
        return next(self._counter)


_SID_VERSION = 1


@dataclass(frozen=True, order=True)
class StorageId:
    """Globally unique storage identifier (Figure 7).

    ``instance_id`` is the 120-bit random node-instance component and
    ``local_oid`` the 64-bit per-catalog counter component.
    """

    instance_id: int
    local_oid: int
    version: int = _SID_VERSION

    def __post_init__(self) -> None:
        if not 0 <= self.instance_id < (1 << 120):
            raise ValueError("instance_id must fit in 120 bits")
        if not 0 <= self.local_oid < (1 << 64):
            raise ValueError("local_oid must fit in 64 bits")

    def __str__(self) -> str:
        # 8-bit version, 120-bit instance, 64-bit local id, hex-encoded.
        packed = (
            (self.version << 184) | (self.instance_id << 64) | self.local_oid
        )
        return f"{packed:048x}"

    @classmethod
    def parse(cls, text: str) -> "StorageId":
        """Inverse of ``str(sid)``."""
        packed = int(text, 16)
        version = packed >> 184
        instance_id = (packed >> 64) & ((1 << 120) - 1)
        local_oid = packed & ((1 << 64) - 1)
        return cls(instance_id=instance_id, local_oid=local_oid, version=version)

    @property
    def prefix(self) -> str:
        """The instance-id component of the printable name.

        The leaked-file cleanup of section 6.5 skips storage whose name has
        the prefix of any currently-running node instance id; this property
        is that prefix.
        """
        return str(self)[:2 + 30]


class SidFactory:
    """Per-process-incarnation SID generator.

    A new :class:`SidFactory` models one start of the Vertica process on a
    node: it draws a fresh 120-bit strongly-random instance id, then stamps
    each storage object with the next local OID.
    """

    def __init__(self, rng: random.Random | None = None):
        rng = rng or random.Random()
        self.instance_id = rng.getrandbits(120)
        self._oids = OidGenerator()

    def next_sid(self, local_oid: int | None = None) -> StorageId:
        if local_oid is None:
            local_oid = self._oids.next_oid()
        return StorageId(instance_id=self.instance_id, local_oid=local_oid)

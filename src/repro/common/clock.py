"""Deterministic discrete-event simulation clock.

All performance experiments in this reproduction run on simulated time: the
paper's numbers come from EC2 wall-clock, which we cannot reproduce, but the
*shapes* (scale-out slopes, saturation points, degradation under failure) are
determined by queueing structure, which a discrete-event simulation captures
exactly and deterministically.

The model is a minimal generator-based process framework in the style of
simpy:

* :class:`SimClock` — the event loop; schedules callbacks at absolute times.
* processes — Python generators spawned with :meth:`SimClock.spawn` that
  ``yield`` *effects*: :class:`Timeout`, an :meth:`Resource.acquire` request,
  or another :class:`Process` (join).
* :class:`Resource` — a counted resource with a FIFO wait queue (used to
  model per-node execution slots, disk/S3 service channels, ...).

Everything is deterministic: ties in event time are broken by insertion
order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional, Sequence, Tuple


class SimClock:
    """Event loop driving simulated time forward."""

    def __init__(self) -> None:
        self.now: float = 0.0
        #: High-water mark of ``now``; an invariant checker can assert
        #: ``now == max_now`` to prove simulated time never ran backwards.
        self.max_now: float = 0.0
        self._heap: List[tuple] = []
        self._seq = itertools.count()

    # -- low-level scheduling ------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), callback))

    def advance(self, dt: float) -> None:
        """Jump the clock forward without running events (bookkeeping only)."""
        if dt < 0:
            raise ValueError("cannot move time backwards")
        self.now += dt
        self.max_now = max(self.max_now, self.now)

    def charge_parallel(
        self, durations: Sequence[float], lanes: int
    ) -> Tuple[float, List[float]]:
        """Cost of running ``durations`` over ``lanes`` concurrent lanes.

        Greedy in-order assignment: each duration goes to the lane that
        frees up earliest (lowest index on ties), matching a fetch
        scheduler that issues requests in plan order onto a bounded pool
        of connections.  Returns ``(makespan, lane_totals)`` where
        ``makespan`` is the max over lanes — the wall-clock the batch
        occupies — and ``lane_totals`` the per-lane busy seconds (their
        sum is what a serial execution would have charged).

        Pure accounting: like query latency generally, this does not move
        ``now`` — callers fold the makespan into cost-model latency.
        Deterministic for a given input (no RNG, no tie ambiguity).
        """
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        if any(d < 0 for d in durations):
            raise ValueError("durations must be >= 0")
        lane_free = [0.0] * min(lanes, max(len(durations), 1))
        for duration in durations:
            index = min(range(len(lane_free)), key=lambda i: (lane_free[i], i))
            lane_free[index] += duration
        return (max(lane_free) if durations else 0.0), lane_free

    # -- event loop ----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the queue drains or ``until`` is reached."""
        while self._heap:
            t, _, callback = self._heap[0]
            if until is not None and t > until:
                # ``until`` in the past must not rewind the clock.
                self.now = max(self.now, until)
                self.max_now = max(self.max_now, self.now)
                return
            heapq.heappop(self._heap)
            self.now = t
            self.max_now = max(self.max_now, self.now)
            callback()
        if until is not None and until > self.now:
            self.now = until
            self.max_now = max(self.max_now, self.now)

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    # -- process framework ---------------------------------------------------

    def spawn(self, generator: Generator) -> "Process":
        """Start a process; it begins executing at the current time."""
        process = Process(self, generator)
        self.schedule(0.0, process._step_none)
        return process


@dataclass
class Timeout:
    """Yield from a process to sleep for ``delay`` simulated seconds."""

    delay: float


class Process:
    """A running simulation process wrapping a generator.

    Other processes may ``yield`` a Process to wait for its completion; the
    waiting process receives the finished process's return value.
    """

    def __init__(self, clock: SimClock, generator: Generator):
        self._clock = clock
        self._gen = generator
        self.finished = False
        self.value: object = None
        self.error: Optional[BaseException] = None
        self._waiters: List[Callable[[], None]] = []

    def _step_none(self) -> None:
        self._step(None)

    def _step(self, send_value: object) -> None:
        try:
            effect = self._gen.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:  # propagate to joiners
            self.error = exc
            self._finish(None)
            return
        self._dispatch(effect)

    def _dispatch(self, effect: object) -> None:
        if isinstance(effect, Timeout):
            self._clock.schedule(effect.delay, lambda: self._step(None))
        elif isinstance(effect, _AcquireRequest):
            effect.resource._enqueue(effect, self)
        elif isinstance(effect, AcquireAll):
            effect._register(self)
        elif isinstance(effect, Process):
            if effect.finished:
                self._clock.schedule(0.0, lambda: self._resume_join(effect))
            else:
                effect._waiters.append(lambda: self._resume_join(effect))
        else:
            raise TypeError(f"process yielded unsupported effect: {effect!r}")

    def _resume_join(self, joined: "Process") -> None:
        if joined.error is not None:
            try:
                self._gen.throw(joined.error)
            except StopIteration as stop:
                self._finish(stop.value)
                return
            except BaseException as exc:
                self.error = exc
                self._finish(None)
                return
            # generator swallowed the error and yielded a new effect — we
            # cannot recover the effect from throw() result here, so forbid.
            raise RuntimeError("process must not yield from except block via throw")
        self._step(joined.value)

    def _finish(self, value: object) -> None:
        self.finished = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self._clock.schedule(0.0, waiter)
        if self.error is not None and not waiters:
            raise self.error


class _AcquireRequest:
    def __init__(self, resource: "Resource", amount: int):
        self.resource = resource
        self.amount = amount


class AcquireAll:
    """Atomically acquire one unit from each resource.

    Yield an instance from a process; it resumes only when *every*
    resource has a free unit, and takes them all at once — avoiding the
    convoy effect of holding one resource while queueing on another
    (exactly what a database's admission controller does with execution
    slots).  Waiters are served FIFO per arrival.
    """

    _seq_counter = itertools.count()

    def __init__(self, resources: Sequence["Resource"]):
        self.resources = list(resources)
        self._process: Optional[Process] = None
        self._seq = next(AcquireAll._seq_counter)

    def _register(self, process: Process) -> None:
        self._process = process
        for resource in self.resources:
            resource._multi_waiters.append(self)
        if self.resources:
            self.resources[0]._try_multi()
        else:
            process._clock.schedule(0.0, lambda: process._step(None))

    def _ready(self) -> bool:
        # Count duplicates: acquiring the same resource twice needs 2 units.
        needed: dict = {}
        for resource in self.resources:
            needed[id(resource)] = needed.get(id(resource), 0) + 1
        return all(
            resource.available >= needed[id(resource)]
            for resource in self.resources
        )

    def _grant(self) -> None:
        for resource in self.resources:
            resource.in_use += 1
            if self in resource._multi_waiters:
                resource._multi_waiters.remove(self)
        process = self._process
        if process is not None:
            process._clock.schedule(0.0, lambda: process._step(None))

    def release(self) -> None:
        for resource in self.resources:
            resource.release()


class Resource:
    """Counted resource with FIFO waiting, e.g. per-node execution slots."""

    def __init__(self, clock: SimClock, capacity: int, name: str = ""):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self._clock = clock
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: List[tuple] = []  # (request, process)
        self._multi_waiters: List["AcquireAll"] = []

    def acquire(self, amount: int = 1) -> _AcquireRequest:
        """Yield the returned request from a process to take ``amount`` units."""
        if amount < 1:
            raise ValueError("amount must be >= 1")
        return _AcquireRequest(self, amount)

    def release(self, amount: int = 1) -> None:
        if amount > self.in_use:
            raise ValueError("releasing more than is held")
        self.in_use -= amount
        self._drain()

    def set_capacity(self, capacity: int) -> None:
        """Resize the resource (elasticity); waiters are re-examined."""
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._drain()

    @property
    def available(self) -> int:
        return max(0, self.capacity - self.in_use)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def _enqueue(self, request: _AcquireRequest, process: Process) -> None:
        self._queue.append((request, process))
        self._drain()

    def _drain(self) -> None:
        # FIFO: only the head of the queue may proceed, preventing small
        # requests from starving large ones.
        while self._queue:
            request, process = self._queue[0]
            if self.capacity > 0 and request.amount > self.capacity:
                # Can never be satisfied at this size; zero-capacity
                # resources instead make requests wait (the resource may be
                # resized later, e.g. a node coming back up).
                raise ValueError(
                    f"request of {request.amount} exceeds capacity "
                    f"{self.capacity} of resource {self.name!r}"
                )
            if self.in_use + request.amount > self.capacity:
                break
            self._queue.pop(0)
            self.in_use += request.amount
            self._clock.schedule(0.0, lambda p=process: p._step(None))
        self._try_multi()

    def _try_multi(self) -> None:
        """Grant waiting AcquireAll requests (globally FIFO by seq)."""
        progressed = True
        while progressed:
            progressed = False
            for waiter in sorted(self._multi_waiters, key=lambda w: w._seq):
                if waiter._ready():
                    waiter._grant()
                    progressed = True
                    break

"""Hash-space primitives for segmentation and sharding.

The paper (section 3.1, Figure 3) divides a 32-bit hash space into segment
shards, each owning a contiguous region.  Every tuple is hashed on its
projection's segmentation columns; the resulting 32-bit value determines the
shard (Eon mode) or node (Enterprise mode) responsible for the tuple.

We use FNV-1a for scalar values because it is simple, fast in pure Python,
deterministic across processes (unlike Python's builtin ``hash`` with string
randomisation), and spreads realistic key distributions evenly — the same
properties Vertica needs from its segmentation hash.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Size of the segmentation hash space: values lie in [0, HASH_SPACE).
HASH_SPACE = 1 << 32

_FNV_OFFSET = 0x811C9DC5
_FNV_PRIME = 0x01000193
_MASK32 = 0xFFFFFFFF


def hash_bytes(data: bytes) -> int:
    """FNV-1a over ``data``, returning a value in [0, 2**32)."""
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK32
    return h


def hash_int(value: int) -> int:
    """Hash an integer into the 32-bit space.

    Uses the value's two's-complement little-endian byte representation so
    that numerically equal numpy and Python ints hash identically.
    """
    v = int(value) & 0xFFFFFFFFFFFFFFFF
    return hash_bytes(v.to_bytes(8, "little"))


def hash_value(value: object) -> int:
    """Hash a single scalar (int, float, str, bytes, None, bool)."""
    if value is None:
        return 0
    if isinstance(value, (bool, np.bool_)):
        return hash_int(int(value))
    if isinstance(value, (int, np.integer)):
        return hash_int(int(value))
    if isinstance(value, (float, np.floating)):
        # Hash floats via their IEEE bits; integral floats hash like ints so
        # joins between int and float key columns co-locate.
        f = float(value)
        if f.is_integer():
            return hash_int(int(f))
        return hash_bytes(np.float64(f).tobytes())
    if isinstance(value, str):
        return hash_bytes(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return hash_bytes(bytes(value))
    raise TypeError(f"unhashable segmentation value type: {type(value)!r}")


def hash_row(values: Sequence[object]) -> int:
    """Hash a multi-column segmentation key by mixing per-column hashes."""
    h = _FNV_OFFSET
    for value in values:
        h ^= hash_value(value)
        h = (h * _FNV_PRIME) & _MASK32
    return h


def hash_column(values: Iterable[object]) -> np.ndarray:
    """Vectorised helper: hash every element of a column.

    Returns a uint64 array of 32-bit hash values.  Integer arrays take a
    fast vectorised path; everything else falls back to per-value hashing.
    """
    arr = np.asarray(values)
    if arr.dtype.kind in ("i", "u"):
        return _hash_int_array(arr)
    return np.fromiter(
        (hash_value(v) for v in arr), dtype=np.uint64, count=len(arr)
    )


def _hash_int_array(arr: np.ndarray) -> np.ndarray:
    """Vectorised FNV-1a over the 8-byte little-endian form of each int."""
    v = arr.astype(np.uint64)
    h = np.full(len(v), _FNV_OFFSET, dtype=np.uint64)
    prime = np.uint64(_FNV_PRIME)
    mask = np.uint64(_MASK32)
    for shift in range(0, 64, 8):
        byte = (v >> np.uint64(shift)) & np.uint64(0xFF)
        h = ((h ^ byte) * prime) & mask
    return h


def hash_columns(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Hash a multi-column key for every row, vectorised.

    Mirrors :func:`hash_row`: per-column hashes are mixed with FNV-1a.
    """
    if not columns:
        raise ValueError("hash_columns requires at least one column")
    n = len(columns[0])
    h = np.full(n, _FNV_OFFSET, dtype=np.uint64)
    prime = np.uint64(_FNV_PRIME)
    mask = np.uint64(_MASK32)
    for col in columns:
        if len(col) != n:
            raise ValueError("segmentation columns differ in length")
        h = ((h ^ hash_column(col)) * prime) & mask
    return h

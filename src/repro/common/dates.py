"""Date helpers: DATE columns are stored as int days since 1970-01-01."""

from __future__ import annotations

import datetime

_EPOCH = datetime.date(1970, 1, 1)


def date_to_days(text: str) -> int:
    """Parse 'YYYY-MM-DD' into days since epoch."""
    d = datetime.date.fromisoformat(text)
    return (d - _EPOCH).days


def days_to_date(days: int) -> str:
    """Inverse of :func:`date_to_days`."""
    return (_EPOCH + datetime.timedelta(days=int(days))).isoformat()


def year_of_days(days: int) -> int:
    return (_EPOCH + datetime.timedelta(days=int(days))).year


def month_of_days(days: int) -> int:
    return (_EPOCH + datetime.timedelta(days=int(days))).month


def make_date(year: int, month: int, day: int) -> int:
    return (datetime.date(year, month, day) - _EPOCH).days

"""Column types and table schemas.

The engine stores column data in numpy arrays; each logical
:class:`ColumnType` maps to a numpy dtype.  Strings use object arrays so we
can represent variable-length values and NULL (``None``) uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


class ColumnType(enum.Enum):
    """Logical SQL column types supported by the engine."""

    INT = "int"
    FLOAT = "float"
    VARCHAR = "varchar"
    DATE = "date"  # stored as int days since epoch
    BOOL = "bool"

    @property
    def dtype(self) -> np.dtype:
        return _DTYPES[self]

    @property
    def is_numeric(self) -> bool:
        return self in (ColumnType.INT, ColumnType.FLOAT, ColumnType.DATE, ColumnType.BOOL)

    def coerce(self, values: Sequence[object]) -> np.ndarray:
        """Build a column array of this type from Python values."""
        if self is ColumnType.VARCHAR:
            return np.array(list(values), dtype=object)
        return np.asarray(list(values), dtype=self.dtype)

    @classmethod
    def from_sql(cls, name: str) -> "ColumnType":
        key = name.strip().lower()
        if "(" in key:  # e.g. varchar(32)
            key = key[: key.index("(")]
        try:
            return _SQL_NAMES[key]
        except KeyError:
            raise ValueError(f"unsupported SQL type: {name!r}") from None


_DTYPES = {
    ColumnType.INT: np.dtype(np.int64),
    ColumnType.FLOAT: np.dtype(np.float64),
    ColumnType.VARCHAR: np.dtype(object),
    ColumnType.DATE: np.dtype(np.int64),
    ColumnType.BOOL: np.dtype(np.bool_),
}

_SQL_NAMES = {
    "int": ColumnType.INT,
    "integer": ColumnType.INT,
    "bigint": ColumnType.INT,
    "smallint": ColumnType.INT,
    "float": ColumnType.FLOAT,
    "double": ColumnType.FLOAT,
    "real": ColumnType.FLOAT,
    "decimal": ColumnType.FLOAT,
    "numeric": ColumnType.FLOAT,
    "varchar": ColumnType.VARCHAR,
    "char": ColumnType.VARCHAR,
    "text": ColumnType.VARCHAR,
    "date": ColumnType.DATE,
    "boolean": ColumnType.BOOL,
    "bool": ColumnType.BOOL,
}


@dataclass(frozen=True)
class SchemaColumn:
    """One column of a table schema."""

    name: str
    ctype: ColumnType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("column name must be non-empty")


@dataclass
class TableSchema:
    """Ordered set of named, typed columns."""

    columns: List[SchemaColumn] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in schema: {names}")

    @classmethod
    def of(cls, *cols: Tuple[str, ColumnType]) -> "TableSchema":
        return cls([SchemaColumn(n, t) for n, t in cols])

    @property
    def names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> SchemaColumn:
        for c in self.columns:
            if c.name == name:
                return c
        raise KeyError(f"no column named {name!r}")

    def index_of(self, name: str) -> int:
        for i, c in enumerate(self.columns):
            if c.name == name:
                return i
        raise KeyError(f"no column named {name!r}")

    def maybe_index_of(self, name: str) -> Optional[int]:
        try:
            return self.index_of(name)
        except KeyError:
            return None

    def subset(self, names: Sequence[str]) -> "TableSchema":
        return TableSchema([self.column(n) for n in names])

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: object) -> bool:
        return any(c.name == name for c in self.columns)

    def __iter__(self):
        return iter(self.columns)

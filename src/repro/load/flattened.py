"""Flattened tables (section 2.1): load-time denormalisation + refresh.

"Vertica supports a mechanism called Flattened Tables that performs
arbitrary denormalization using joins at load time while also providing a
refresh mechanism for updating the denormalized table columns when the
joined dimension table changes."
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.catalog.objects import Table
from repro.cluster.transactions import Transaction
from repro.errors import CatalogError
from repro.storage.container import RowSet


def apply_flattening(cluster, table: Table, rows: RowSet) -> RowSet:
    """Fill the table's flattened columns by joining against their
    dimension tables; ``rows`` supplies only the base columns."""
    columns: Dict[str, np.ndarray] = {
        name: rows.column(name) for name in rows.schema.names
    }
    for spec in table.flattened:
        lookup = _dimension_lookup(cluster, spec)
        fact_keys = rows.column(spec.fact_key)
        ctype = table.schema.column(spec.output).ctype
        values = [lookup.get(_scalar(k)) for k in fact_keys]
        columns[spec.output] = ctype.coerce(values)
    return RowSet(table.schema, {c.name: columns[c.name] for c in table.schema.columns})


def refresh_flattened(cluster, table_name: str, epoch: int = 0) -> int:
    """Re-derive every flattened column from the current dimension data.

    Modelled like an UPDATE: the old containers are tombstoned and new
    containers with refreshed values are written, in one transaction.
    Returns the number of rows refreshed.
    """
    from repro.load.copy import CopyReport, _load_live_aggregate, _load_projection
    from repro.load.dml import delete_from

    node = cluster.any_up_node()
    state = node.catalog.state
    table = state.table(table_name)
    if not table.flattened:
        raise CatalogError(f"table {table_name!r} has no flattened columns")

    txn = Transaction()
    deleted: List[RowSet] = []
    count = delete_from(
        cluster, table_name, None, epoch, _txn=txn, _collect_deleted=deleted
    )
    if count == 0:
        return 0
    old_rows = RowSet.concat(deleted).select(table.schema.names)
    base = old_rows.select(table.base_columns)
    refreshed = apply_flattening(cluster, table, base)

    report = CopyReport()
    for projection in state.projections_of(table_name):
        if not projection.is_buddy:
            _load_projection(cluster, table, projection, refreshed, txn, report, True)
    for lap in state.live_aggs_of(table_name):
        _load_live_aggregate(cluster, table, lap, refreshed, txn, report, True)
    cluster.commit(txn, epoch=epoch)
    return count


def _dimension_lookup(cluster, spec) -> Dict[object, object]:
    """key -> value map over the dimension table's current contents."""
    result = cluster.query(
        f"select {spec.source_key}, {spec.source_column} from {spec.source_table}"
    )
    keys = result.rows.column(spec.source_key)
    values = result.rows.column(spec.source_column)
    return {_scalar(k): _scalar(v) for k, v in zip(keys, values)}


def _scalar(value):
    return value.item() if isinstance(value, np.generic) else value

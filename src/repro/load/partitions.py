"""Partition management operations (sections 2.1 and 4.5).

Vertica supports metadata-only partition operations — "partition
management operations such as copy, move partitions will run according to
the selected mapping of nodes to shards" — and "supports operations like
copy_table and swap_partition which can reference the same storage in
multiple tables, so storage is not tied to a specific table".

Because containers are immutable and live in a flat shared-storage
namespace, moving a partition between tables never touches data: the
container *metadata* is dropped from the source projection and added to
the destination projection under a fresh SID that points at the same
storage location... except SIDs *are* locations in this design, so a move
re-attaches the same container object to the destination projection.
Dropping a partition is likewise a metadata-only operation; the file
reaper deletes the bytes later, once no catalog references them and the
durability conditions hold (section 6.5).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.catalog.mvcc import op_add_container, op_drop_container
from repro.cluster.transactions import Transaction
from repro.errors import CatalogError
from repro.sharding.shard import REPLICA_SHARD_ID
from repro.storage.container import ROSContainer


def _partition_containers(cluster, table_name: str, partition_key: object):
    """Collect (container, shard) pairs of a partition across all shards.

    Storage metadata is sharded, so each shard's containers come from one
    of its subscribers' catalogs.
    """
    coordinator = cluster.any_up_node()
    table = coordinator.catalog.state.table(table_name)
    if table.partition_by is None:
        raise CatalogError(f"table {table_name!r} is not partitioned")
    found: List[ROSContainer] = []
    seen = set()
    for projection in coordinator.catalog.state.projections_of(table_name):
        if projection.is_buddy:
            continue
        shard_ids = (
            [REPLICA_SHARD_ID]
            if projection.segmentation.is_replicated
            else cluster.shard_map.shard_ids()
        )
        for shard_id in shard_ids:
            holder_name = cluster.writer_for_shard(shard_id)
            state = cluster.nodes[holder_name].catalog.state
            for container in state.containers_of(projection.name, shard_id):
                if container.partition_key == partition_key and str(container.sid) not in seen:
                    seen.add(str(container.sid))
                    found.append(container)
    return table, found


def drop_partition(cluster, table_name: str, partition_key: object) -> int:
    """Drop every container of one partition; returns rows dropped.

    Metadata-only: "partitioning the data allows for quick file pruning"
    and equally quick retirement — no delete vectors, no rewrites.
    """
    _table, containers = _partition_containers(cluster, table_name, partition_key)
    if not containers:
        return 0
    txn = Transaction()
    rows = 0
    for container in containers:
        txn.add_op(op_drop_container(str(container.sid), container.shard_id))
        if not _is_buddy_projection(cluster, container.projection):
            rows += container.row_count
    cluster.commit(txn)
    # Rows counted once per logical copy: divide by projection count.
    projections = [
        p for p in cluster.any_up_node().catalog.state.projections_of(table_name)
        if not p.is_buddy
    ]
    return rows // max(len(projections), 1)


def move_partition(
    cluster, source_table: str, target_table: str, partition_key: object
) -> int:
    """Re-attach a partition's containers to another table's projections.

    The two tables must have structurally matching non-buddy projections
    (same column sets, sort orders, and segmentation) — the condition
    under which the same physical file is valid in both. Data files are
    not read, copied, or rewritten; only catalog metadata commits.
    Returns the number of containers moved.
    """
    coordinator = cluster.any_up_node()
    state = coordinator.catalog.state
    target = state.table(target_table)
    if target.partition_by is None:
        raise CatalogError(f"table {target_table!r} is not partitioned")
    mapping = _match_projections(cluster, source_table, target_table)

    _src_table, containers = _partition_containers(
        cluster, source_table, partition_key
    )
    if not containers:
        return 0
    # Refuse if the target already holds this partition (swap ambiguity).
    for projection_name in mapping.values():
        for shard_id in list(cluster.shard_map.shard_ids()) + [REPLICA_SHARD_ID]:
            holder = cluster.nodes[cluster.writer_for_shard(shard_id)]
            for container in holder.catalog.state.containers_of(projection_name, shard_id):
                if container.partition_key == partition_key:
                    raise CatalogError(
                        f"target {target_table!r} already holds partition "
                        f"{partition_key!r}"
                    )

    txn = Transaction()
    for container in containers:
        target_projection = mapping[container.projection]
        txn.add_op(op_drop_container(str(container.sid), container.shard_id))
        txn.add_op(
            op_add_container(replace(container, projection=target_projection))
        )
        if container.shard_id != REPLICA_SHARD_ID:
            # The move must not race with subscription changes.
            writers = cluster.active_up_subscribers(container.shard_id)
            if writers:
                txn.expect_subscription(container.shard_id, writers[0])
    cluster.commit(txn)
    return len(containers)


def _match_projections(cluster, source_table: str, target_table: str) -> Dict[str, str]:
    """Map each source projection to its structural twin on the target."""
    state = cluster.any_up_node().catalog.state
    sources = [p for p in state.projections_of(source_table) if not p.is_buddy]
    targets = [p for p in state.projections_of(target_table) if not p.is_buddy]
    mapping: Dict[str, str] = {}
    for src in sources:
        twin = None
        for dst in targets:
            if (
                src.columns == dst.columns
                and src.sort_order == dst.sort_order
                and src.segmentation == dst.segmentation
            ):
                twin = dst
                break
        if twin is None:
            raise CatalogError(
                f"no projection of {target_table!r} matches {src.name!r} "
                "(columns, sort order, and segmentation must be identical)"
            )
        mapping[src.name] = twin.name
    return mapping


def _is_buddy_projection(cluster, projection_name: str) -> bool:
    projection = cluster.any_up_node().catalog.state.projections.get(projection_name)
    return bool(projection and projection.is_buddy)

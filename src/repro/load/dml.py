"""DELETE and UPDATE via delete vectors (sections 2.3, 4.5).

"Vertica never modifies existing files, instead creating new files for
data or for delete marks."  A DELETE scans each projection's containers,
evaluates the predicate against live rows, and writes a delete vector per
affected container; an UPDATE is modelled as a delete followed by an
insert of the modified tuples, committed atomically.

Delete predicates must be computable on every projection of the table
(i.e. every projection contains the predicate's columns); this mirrors
Vertica's requirement that all projections stay consistent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cache.disk_cache import ObjectInfo
from repro.catalog.mvcc import op_add_delete_vector
from repro.cluster.transactions import Transaction
from repro.engine.expressions import Expr
from repro.errors import CatalogError, ExecutionError
from repro.sharding.shard import REPLICA_SHARD_ID
from repro.storage.container import RowSet, read_container
from repro.storage.delete_vector import (
    DeleteVector,
    combine_positions,
    read_delete_vector,
    write_delete_vector,
)


def delete_from(
    cluster,
    table_name: str,
    predicate: Optional[Expr],
    epoch: int = 0,
    _txn: Optional[Transaction] = None,
    _collect_deleted: Optional[List[RowSet]] = None,
) -> int:
    """Delete matching rows from every projection; returns rows deleted.

    ``_txn`` lets UPDATE share one atomic transaction; ``_collect_deleted``
    receives the deleted tuples (from the first full-column projection) so
    UPDATE can re-insert modified copies.
    """
    node = cluster.any_up_node()
    state = node.catalog.state
    table = state.table(table_name)
    txn = _txn if _txn is not None else Transaction()

    deleted_count = 0
    collected = False
    for projection in state.projections_of(table_name):
        if projection.is_buddy:
            continue
        if predicate is not None:
            missing = predicate.columns_used() - set(projection.columns)
            if missing:
                raise ExecutionError(
                    f"DELETE predicate uses {sorted(missing)} not present in "
                    f"projection {projection.name!r}"
                )
        shard_ids = (
            [REPLICA_SHARD_ID]
            if projection.segmentation.is_replicated
            else cluster.shard_map.shard_ids()
        )
        proj_deleted = 0
        wants_rows = (
            _collect_deleted is not None
            and not collected
            and set(projection.columns) == set(table.schema.names)
        )
        for shard_id in shard_ids:
            writer_name = cluster.writer_for_shard(shard_id)
            writer = cluster.nodes[writer_name]
            if shard_id != REPLICA_SHARD_ID:
                txn.expect_subscription(shard_id, writer_name)
            # Storage metadata for a shard lives only on its subscribers;
            # read the shard's containers from the writer's own catalog.
            shard_state = writer.catalog.state
            for container in sorted(
                shard_state.containers_of(projection.name, shard_id),
                key=lambda c: str(c.sid),
            ):
                data, _, _ = writer.fetch_storage(
                    container.location, cluster.shared_data
                )
                reader = read_container(data)
                rows = reader.read_rowset(list(projection.columns))
                existing = [
                    read_delete_vector(
                        writer.fetch_storage(dv.location, cluster.shared_data)[0]
                    )
                    for dv in shard_state.delete_vectors_for(str(container.sid))
                ]
                already = combine_positions(existing) if existing else np.array([], dtype=np.int64)
                live = np.ones(container.row_count, dtype=bool)
                if len(already):
                    live[already] = False
                if predicate is None:
                    match = live.copy()
                else:
                    match = predicate.evaluate(rows).astype(bool) & live
                positions = np.flatnonzero(match)
                if len(positions) == 0:
                    continue
                if wants_rows:
                    _collect_deleted.append(rows.take(positions))
                proj_deleted += len(positions)
                dv_data = write_delete_vector(positions)
                sid = writer.sid_factory.next_sid()
                info = ObjectInfo(
                    table=table.name, projection=projection.name, shard_id=shard_id
                )
                writer.write_storage(str(sid), dv_data, cluster.shared_data, info=info)
                for peer_name in cluster.active_up_subscribers(shard_id):
                    if peer_name != writer_name:
                        cluster.nodes[peer_name].cache.put(str(sid), dv_data, info=info)
                txn.add_op(
                    op_add_delete_vector(
                        DeleteVector(
                            sid=sid,
                            target_sid=container.sid,
                            projection=projection.name,
                            shard_id=shard_id,
                            deleted_count=len(positions),
                            size_bytes=len(dv_data),
                        )
                    )
                )
        if wants_rows:
            collected = True
        deleted_count = max(deleted_count, proj_deleted)

    if _txn is None and not txn.read_only:
        cluster.commit(txn, epoch=epoch)
    return deleted_count


def update_table(
    cluster,
    table_name: str,
    assignments: List[Tuple[str, Expr]],
    predicate: Optional[Expr],
    epoch: int = 0,
) -> int:
    """UPDATE = DELETE + INSERT of modified tuples, one transaction."""
    from repro.load.copy import _load_live_aggregate, _load_projection  # cycle-free

    node = cluster.any_up_node()
    state = node.catalog.state
    table = state.table(table_name)
    for column, _ in assignments:
        if column not in table.schema:
            raise CatalogError(f"no column {column!r} in table {table_name!r}")

    txn = Transaction()
    deleted: List[RowSet] = []
    count = delete_from(
        cluster, table_name, predicate, epoch, _txn=txn, _collect_deleted=deleted
    )
    if count == 0:
        return 0
    old_rows = RowSet.concat(deleted).select(table.schema.names)
    new_columns = dict(old_rows.columns)
    for column, expr in assignments:
        new_columns[column] = expr.evaluate(old_rows)
    new_rows = RowSet(old_rows.schema, new_columns)

    from repro.load.copy import CopyReport

    report = CopyReport()
    for projection in state.projections_of(table_name):
        if not projection.is_buddy:
            _load_projection(cluster, table, projection, new_rows, txn, report, True)
    for lap in state.live_aggs_of(table_name):
        _load_live_aggregate(cluster, table, lap, new_rows, txn, report, True)
    cluster.commit(txn, epoch=epoch)
    return count

"""Data load (COPY) and DML: the Figure 8 write path.

Loads split input rows by shard, sort each slice by the projection's sort
order, write container files through the writer's cache, upload to shared
storage and push to peer subscribers' caches *before* commit — so a
committed transaction can never lose data files to node failure, and a
node taking over for a failed peer starts with a warm cache.
"""

from repro.load.copy import CopyReport, copy_into
from repro.load.dml import delete_from, update_table

__all__ = ["copy_into", "CopyReport", "delete_from", "update_table"]

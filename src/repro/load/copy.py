"""Bulk load: the data load workflow of Figure 8 (section 4.5).

1. Ingest data on the participating writer nodes.
2. Split by shard ("an executor which is responsible for multiple shards
   will locally split the output data into separate streams for each
   shard, resulting in storage containers that contain data for exactly
   one shard"), sort each stream by the projection sort order, and write
   container files into the writer's cache.
3. Upload the files to shared storage and push them to the caches of the
   other subscribers of each shard.
4. Commit: "the commit point for the statement occurs when upload to the
   shared storage completes" — metadata for the new files is distributed
   to subscribers in the commit.

Intra-node partitioning: when the table declares ``PARTITION BY``, each
shard stream is further split by partition key so any container holds a
single key, enabling partition pruning (section 2.1).

Live aggregate projections are maintained at load time: each batch's
partial aggregates are computed, segmented, and written as LAP containers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cache.disk_cache import ObjectInfo
from repro.catalog.mvcc import op_add_container
from repro.catalog.objects import LiveAggregateProjection, Projection, Table
from repro.cluster.transactions import Transaction
from repro.engine.expressions import ColumnRef
from repro.engine.operators import AggregateSpec, aggregate, partial_specs
from repro.errors import CatalogError
from repro.sharding.shard import REPLICA_SHARD_ID
from repro.storage.container import (
    ROSContainer,
    RowSet,
    container_stats,
    write_container,
)


@dataclass
class CopyReport:
    """Outcome of one COPY statement."""

    rows_loaded: int = 0
    containers_written: int = 0
    bytes_written: int = 0
    io_seconds: float = 0.0
    version: int = 0
    peer_pushes: int = 0


def copy_into(
    cluster,
    table_name: str,
    rows: RowSet,
    use_cache: bool = True,
    epoch: int = 0,
) -> CopyReport:
    """Load ``rows`` into every projection of ``table_name`` and commit."""
    coordinator_node = cluster.any_up_node()
    state = coordinator_node.catalog.state
    table = state.table(table_name)
    provided = set(rows.schema.names)
    if table.flattened and provided == set(table.base_columns):
        # Flattened table: derive the denormalised columns by joining
        # against their dimension tables at load time (section 2.1).
        from repro.load.flattened import apply_flattening

        rows = apply_flattening(cluster, table, rows.select(table.base_columns))
    elif provided != set(table.schema.names):
        raise CatalogError(
            f"COPY input columns {rows.schema.names} do not match table "
            f"schema {table.schema.names}"
        )
    rows = rows.select(table.schema.names)

    report = CopyReport(rows_loaded=rows.num_rows)
    txn = Transaction()
    txn.write_set.record(("table", table_name), coordinator_node.catalog.versions.version_of(("table", table_name)))

    for projection in state.projections_of(table_name):
        if projection.is_buddy:
            continue  # Eon mode has no buddy projections
        _load_projection(cluster, table, projection, rows, txn, report, use_cache)

    for lap in state.live_aggs_of(table_name):
        _load_live_aggregate(cluster, table, lap, rows, txn, report, use_cache)

    report.version = cluster.commit(txn, epoch=epoch)
    return report


# ---------------------------------------------------------------------------


def _load_projection(
    cluster,
    table: Table,
    projection: Projection,
    rows: RowSet,
    txn: Transaction,
    report: CopyReport,
    use_cache: bool,
) -> None:
    proj_rows = rows.select(list(projection.columns))
    if projection.segmentation.is_replicated:
        # "Replicated projections use just a single participating node as
        # the writer."
        writer = cluster.writer_for_shard(REPLICA_SHARD_ID)
        _write_shard_containers(
            cluster,
            table,
            projection.name,
            REPLICA_SHARD_ID,
            writer,
            proj_rows,
            tuple(projection.sort_order),
            txn,
            report,
            use_cache,
        )
        return
    by_shard = cluster.shard_map.split_rowset(
        proj_rows, list(projection.segmentation.columns)
    )
    for shard_id, shard_rows in sorted(by_shard.items()):
        writer = cluster.writer_for_shard(shard_id)
        txn.expect_subscription(shard_id, writer)
        _write_shard_containers(
            cluster,
            table,
            projection.name,
            shard_id,
            writer,
            shard_rows,
            tuple(projection.sort_order),
            txn,
            report,
            use_cache,
        )


def _load_live_aggregate(
    cluster,
    table: Table,
    lap: LiveAggregateProjection,
    rows: RowSet,
    txn: Transaction,
    report: CopyReport,
    use_cache: bool,
) -> None:
    """Compute this batch's partial aggregates and store them as LAP data."""
    specs = [
        AggregateSpec(a.func, ColumnRef(a.argument) if a.argument else None, a.output_name)
        for a in lap.aggregates
    ]
    # Partial state: avg would decompose, but LAP definitions use
    # sum/count/min/max directly, which are their own partial state.
    partial = aggregate(rows, list(lap.group_by), specs, mode="complete")
    if lap.segmentation.is_replicated:
        writer = cluster.writer_for_shard(REPLICA_SHARD_ID)
        _write_shard_containers(
            cluster, table, lap.name, REPLICA_SHARD_ID, writer, partial,
            tuple(lap.group_by), txn, report, use_cache,
        )
        return
    by_shard = cluster.shard_map.split_rowset(
        partial, list(lap.segmentation.columns)
    )
    for shard_id, shard_rows in sorted(by_shard.items()):
        writer = cluster.writer_for_shard(shard_id)
        txn.expect_subscription(shard_id, writer)
        _write_shard_containers(
            cluster, table, lap.name, shard_id, writer, shard_rows,
            tuple(lap.group_by), txn, report, use_cache,
        )


def _write_shard_containers(
    cluster,
    table: Table,
    projection_name: str,
    shard_id: int,
    writer_name: str,
    shard_rows: RowSet,
    sort_order: Tuple[str, ...],
    txn: Transaction,
    report: CopyReport,
    use_cache: bool,
) -> None:
    """Sort, partition, serialise, cache, upload, peer-push one stream."""
    if shard_rows.num_rows == 0:
        return
    writer = cluster.nodes[writer_name]
    partitions: List[Tuple[Optional[object], RowSet]]
    if table.partition_by is not None and table.partition_by in shard_rows.schema:
        partitions = _split_by_partition(shard_rows, table.partition_by)
    else:
        partitions = [(None, shard_rows)]

    for partition_key, part in partitions:
        sorted_rows = part.sort_by(list(sort_order)) if sort_order else part
        data = write_container(sorted_rows)
        sid = writer.sid_factory.next_sid()
        info = ObjectInfo(
            table=table.name,
            projection=projection_name,
            partition_key=partition_key,
            shard_id=shard_id,
        )
        report.io_seconds += writer.write_storage(
            str(sid), data, cluster.shared_data, info=info, use_cache=use_cache
        )
        report.bytes_written += len(data)
        report.containers_written += 1
        # Push to the other subscribers' caches so a takeover node is warm.
        for peer_name in cluster.active_up_subscribers(shard_id):
            if peer_name == writer_name:
                continue
            peer = cluster.nodes[peer_name]
            if use_cache and peer.cache.put(str(sid), data, info=info):
                report.peer_pushes += 1
        mins, maxs = container_stats(sorted_rows)
        txn.add_op(
            op_add_container(
                ROSContainer(
                    sid=sid,
                    projection=projection_name,
                    shard_id=shard_id,
                    row_count=sorted_rows.num_rows,
                    size_bytes=len(data),
                    min_values=mins,
                    max_values=maxs,
                    partition_key=partition_key,
                    creation_version=0,
                )
            )
        )


def _split_by_partition(rows: RowSet, partition_by: str) -> List[Tuple[object, RowSet]]:
    column = rows.column(partition_by)
    out: List[Tuple[object, RowSet]] = []
    if column.dtype.kind == "O":
        for key in sorted({v for v in column}, key=lambda v: (v is None, v)):
            mask = np.fromiter((v == key for v in column), dtype=bool, count=len(column))
            out.append((key, rows.filter(mask)))
        return out
    for key in np.unique(column):
        out.append((key.item(), rows.filter(column == key)))
    return out

"""Cluster layer: nodes, Eon and Enterprise clusters, revive, recovery.

:class:`EonCluster` is the paper's contribution assembled: sharded
metadata with subscriptions, shared-storage data with per-node caches,
max-flow session layout, elastic throughput scaling, subclusters, crunch
scaling, revive, and background services (catalog sync, mergeout
coordination, file reaping).

:class:`EnterpriseCluster` is the shared-nothing baseline it is evaluated
against: node-owned local storage, buddy projections for fault tolerance,
WOS + moveout, and repair-style recovery.
"""

from repro.cluster.enterprise import EnterpriseCluster
from repro.cluster.eon import EonCluster
from repro.cluster.node import Node, NodeState

__all__ = ["EonCluster", "EnterpriseCluster", "Node", "NodeState"]

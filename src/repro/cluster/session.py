"""Query sessions and the Eon storage provider.

A session (section 4.1) selects, via max flow, a *participating
subscription* per shard: which node serves which shard for this session's
queries.  Sessions also carry the crunch-scaling configuration (section
4.4) when a query should use more nodes than there are shards, and the
subcluster priority (section 4.3) when workload isolation applies.

:class:`EonStorageProvider` adapts a session to the executor's
:class:`StorageProvider` interface: scans fetch this node's shards'
containers through its cache, apply delete vectors, and prune containers
from min/max statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cache.disk_cache import ObjectInfo
from repro.catalog.catalog import CatalogSnapshot
from repro.engine.cost import (
    choose_scan_strategy,
    estimate_pushdown_bytes,
    estimate_selectivity,
)
from repro.engine.executor import ScanResult, StorageProvider
from repro.engine.expressions import Expr, extract_column_bounds
from repro.engine.pruning import prune_containers
from repro.errors import ExecutionError, QueryCancelled
from repro.io.scheduler import FetchRequest
from repro.sharding.shard import REPLICA_SHARD_ID, ShardMap
from repro.storage.container import ROSContainer, RowSet, read_container
from repro.storage.delete_vector import (
    combine_positions,
    mask_from_positions,
    read_delete_vector,
)


@dataclass
class EonSession:
    """One client session's layout over the cluster."""

    cluster: object
    initiator: str
    #: shard -> node chosen by the max-flow selection (ETS subset).
    assignment: Dict[int, str]
    #: shard -> ordered nodes sharing the shard (crunch scaling); length 1
    #: lists are the common, non-crunch case.
    sharing: Dict[int, List[str]]
    crunch: Optional[str]  # None | "hash" | "container"
    snapshots: Dict[str, CatalogSnapshot]
    use_cache: bool = True
    seed: int = 0
    cancelled: bool = False

    def cancel(self) -> None:
        """Request cancellation; scans abort at the next file boundary
        ("users expect their queries to be cancelable, so Vertica cannot
        hang waiting for S3 to respond" — section 5.3)."""
        self.cancelled = True

    def participants(self) -> List[str]:
        seen: List[str] = []
        for nodes in self.sharing.values():
            for node in nodes:
                if node not in seen:
                    seen.append(node)
        if self.initiator not in seen:
            seen.append(self.initiator)
        return seen

    def shards_of(self, node: str) -> List[Tuple[int, int, int]]:
        """(shard, sub_index, share_count) triples this node serves."""
        out = []
        for shard, nodes in self.sharing.items():
            for index, name in enumerate(nodes):
                if name == node:
                    out.append((shard, index, len(nodes)))
        return out

    def release(self) -> None:
        for snapshot in self.snapshots.values():
            snapshot.release()

    def __enter__(self) -> "EonSession":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class EonStorageProvider(StorageProvider):
    """Executor-facing scan interface over an Eon session."""

    def __init__(self, session: EonSession):
        self.session = session
        self.cluster = session.cluster
        cost = getattr(self.cluster.shared, "cost", None)
        #: Dollars per GET on the shared backend (0 for cost-free backends).
        self._get_dollars = cost.get_cost() if cost is not None else 0.0
        #: Set by the batched executor; scans defer lane charging into it.
        self._pipeline = None
        #: Pushdown mode (off | auto | on), set by the executor from the
        #: session option; and the planner's per-scan eligibility hint.
        self._pushdown = "off"
        self._scan_eligible = False

    def set_pushdown(self, mode: str) -> None:
        self._pushdown = mode

    def note_scan_eligibility(self, eligible: bool) -> None:
        self._scan_eligible = bool(eligible)

    def participants(self) -> List[str]:
        return self.session.participants()

    def initiator(self) -> str:
        return self.session.initiator

    def make_pipeline_charges(self):
        scheduler = getattr(self.cluster, "io_scheduler", None)
        if scheduler is None:
            return None
        from repro.engine.pipeline import PipelineCharges

        return PipelineCharges(self.cluster.clock, scheduler.config.lanes)

    def attach_pipeline(self, charges) -> None:
        self._pipeline = charges

    @property
    def preserves_segmentation(self) -> bool:
        # Hash-filter crunch re-segments by the same columns, preserving
        # co-location; container split does not (section 4.4).
        if self.session.crunch == "container":
            return False
        return True

    def scan(
        self,
        node_name: str,
        projection: str,
        columns: Sequence[str],
        predicate: Optional[Expr],
        replicated: bool,
    ) -> ScanResult:
        session = self.session
        snapshot = session.snapshots[node_name]
        state = snapshot.state
        node = self.cluster.nodes[node_name]
        node.ensure_up()
        shard_map: ShardMap = self.cluster.shard_map

        result = ScanResult(rows=RowSet.empty(_projection_schema(state, projection, columns)))
        parts: List[RowSet] = []
        predicate_bounds = extract_column_bounds(predicate)

        if replicated:
            assignments: List[Tuple[Optional[int], int, int]] = [(REPLICA_SHARD_ID, 0, 1)]
        else:
            assignments = session.shards_of(node_name)

        # Pass 1: resolve each assignment's post-pruning container list and
        # collect the full storage-file set the scan will read.  Handing
        # the whole batch to the I/O scheduler up front is what lets it
        # dedupe, coalesce, and overlap the fetches (see repro.io).  Each
        # container also gets its scan strategy here; pushdown-chosen
        # containers STAY in the fetch batch (as background hydration) so
        # the depot's demand ledger — misses, puts, LRU order, GET
        # requests, fault draws — is bit-identical to a pushdown-off run.
        scheduler = getattr(self.cluster, "io_scheduler", None)
        scan_units: List[tuple] = []
        fetch_requests: List[FetchRequest] = []
        pushdown_keys: Set[str] = set()
        pushdown_items: List[tuple] = []
        ordinal = 0
        for shard_id, sub_index, share_count in assignments:
            containers = state.containers_of(projection, shard_id)
            containers.sort(key=lambda c: str(c.sid))
            kept, pruned = prune_containers(containers, predicate)
            result.containers_pruned += pruned
            if session.crunch == "container" and share_count > 1:
                kept = [c for i, c in enumerate(kept) if i % share_count == sub_index]
            hash_crunch = session.crunch == "hash" and share_count > 1
            read_columns = list(columns)
            seg_cols: Tuple[str, ...] = ()
            if hash_crunch:
                # The secondary hash predicate needs the segmentation
                # columns even when the query does not read them.
                seg_cols = self._segmentation_columns(state, projection)
                read_columns += [c for c in seg_cols if c not in read_columns]
            scan_units.append(
                (kept, hash_crunch, read_columns, seg_cols, share_count, sub_index)
            )
            for container in kept:
                info = self._object_info(state, container)
                dvs = state.delete_vectors_for(str(container.sid))
                strategy = self._container_strategy(
                    node, state, projection, container, read_columns,
                    predicate, predicate_bounds, bool(dvs), scheduler,
                    hash_crunch,
                )
                if strategy == "pushdown":
                    pushdown_keys.add(container.location)
                    pushdown_items.append(
                        (container.location, list(read_columns), predicate)
                    )
                fetch_requests.append(
                    FetchRequest(
                        container.location, container.size_bytes, ordinal, info
                    )
                )
                for dv in dvs:
                    fetch_requests.append(
                        FetchRequest(dv.location, dv.size_bytes, ordinal, info)
                    )
                ordinal += 1

        batch = None
        if scheduler is not None and fetch_requests:
            batch = scheduler.fetch_batch(
                node, fetch_requests, session.use_cache, result,
                cancelled=lambda: session.cancelled,
                pool=self._pipeline,
                background_keys=pushdown_keys or None,
            )
        # Selects run after the batch so the GET request (and fault-draw)
        # sequence is the off-run's sequence, with SELECTs appended.
        selects: Dict[str, object] = {}
        if scheduler is not None and pushdown_items:
            selects = scheduler.pushdown_batch(
                node, pushdown_items, result,
                cancelled=lambda: session.cancelled,
                pool=self._pipeline,
            )

        # Pass 2: scan the containers (bytes come out of the batch; any
        # file the batch does not cover takes the serial fetch path).
        # Pushdown containers take their rows from the select results —
        # already filtered and projected server-side; the executor's
        # post-scan predicate re-application is a no-op on them — but
        # still consume their hydration bytes for prefetch-credit parity.
        for kept, hash_crunch, read_columns, seg_cols, share_count, sub_index in scan_units:
            for container in kept:
                if session.cancelled:
                    raise QueryCancelled(
                        f"session cancelled while scanning {projection!r}"
                    )
                select = selects.get(container.location)
                if select is not None:
                    scheduler.consume(batch, node, container.location, result)
                    rows = select.rows
                    # Parity counters: what the depot path would have booked
                    # for this container (same pruning logic server-side).
                    result.blocks_pruned += select.blocks_pruned
                    result.pushdown_rows_filtered += (
                        select.rows_examined - rows.num_rows
                    )
                else:
                    rows = self._read_container(
                        node, state, container, read_columns, result,
                        predicate_bounds, batch,
                    )
                if hash_crunch and rows.num_rows:
                    hashes = shard_map.hash_rowset(rows, seg_cols)
                    rows = rows.filter(
                        hashes % np.uint64(share_count) == np.uint64(sub_index)
                    )
                if hash_crunch:
                    rows = rows.select(list(columns))
                if rows.num_rows:
                    parts.append(rows)
                result.containers_scanned += 1
        if parts:
            result.rows = RowSet.concat(parts)
        if not session.use_cache:
            result.scan_strategy = "get"
        elif selects:
            result.scan_strategy = "pushdown"
        else:
            result.scan_strategy = "depot"
        return result

    def _container_strategy(
        self,
        node,
        state,
        projection: str,
        container: ROSContainer,
        read_columns: Sequence[str],
        predicate: Optional[Expr],
        predicate_bounds: Optional[dict],
        has_delete_vectors: bool,
        scheduler,
        hash_crunch: bool = False,
    ) -> str:
        """Pick depot / get / pushdown for one container (see
        :func:`repro.engine.cost.choose_scan_strategy` for the table).

        Estimates are only computed on the ``auto`` break-even path:
        scanned bytes from the touched-column fraction of the container,
        returned bytes from interval-overlap selectivity against the
        container's min/max stats.  Serial scans (no I/O scheduler) never
        push down — pushdown rides the scheduler's own lane — and neither
        do hash-crunch shares (the secondary hash split would hide the
        raw row count the parity accounting needs).
        """
        session = self.session
        shared = self.cluster.shared_data
        supports = bool(getattr(shared, "supports_select", False))
        eligible = (
            self._scan_eligible
            and predicate is not None
            and scheduler is not None
            and not hash_crunch
        )
        resident = session.use_cache and node.cache.contains(container.location)
        fetch_seconds = pushdown_seconds = 0.0
        if (
            self._pushdown == "auto"
            and eligible
            and supports
            and not resident
            and session.use_cache
            and not has_delete_vectors
        ):
            proj = state.projections.get(projection)
            if proj is None or not proj.columns:
                # Live-aggregate containers: no base-table column map to
                # estimate against, and their scans carry no predicate.
                return "depot"
            touched = list(dict.fromkeys(read_columns))
            scanned_est = int(
                container.size_bytes * len(touched) / max(1, len(proj.columns))
            )
            selectivity = estimate_selectivity(predicate_bounds or {}, container)
            returned_est = estimate_pushdown_bytes(scanned_est, selectivity)
            pushdown_seconds = shared.estimate_select_seconds(
                scanned_est, returned_est
            )
            fetch_seconds = shared.estimate_read_seconds(container.size_bytes)
        return choose_scan_strategy(
            self._pushdown,
            resident=resident,
            use_cache=session.use_cache,
            has_delete_vectors=has_delete_vectors,
            eligible=eligible,
            supports_select=supports,
            fetch_seconds=fetch_seconds,
            pushdown_seconds=pushdown_seconds,
        )

    # -- internals ---------------------------------------------------------------

    def _segmentation_columns(self, state, projection_name: str) -> Tuple[str, ...]:
        projection = state.projections.get(projection_name)
        if projection is not None:
            return tuple(projection.segmentation.columns)
        lap = state.live_aggs.get(projection_name)
        if lap is not None:
            return tuple(lap.segmentation.columns)
        raise ExecutionError(f"unknown projection {projection_name!r}")

    def _object_info(self, state, container: ROSContainer) -> ObjectInfo:
        projection = state.projections.get(container.projection)
        lap = state.live_aggs.get(container.projection)
        anchor = (
            projection.anchor_table
            if projection is not None
            else (lap.anchor_table if lap is not None else None)
        )
        return ObjectInfo(
            table=anchor,
            projection=container.projection,
            partition_key=container.partition_key,
            shard_id=container.shard_id,
        )

    def _fetch_through_depot(
        self, node, location: str, info, result: ScanResult, batch=None
    ) -> bytes:
        """One file fetch: depot hit/miss and S3 accounting, plus an
        ``s3_get`` span (duration = that request's IO seconds) when the
        cluster's observability is enabled.

        When the scan pre-fetched a batch (``batch`` is set), bytes come
        straight out of it — the scheduler already did all hit/miss/S3
        accounting at fetch time; consuming only books prefetch credit.
        """
        if batch is not None:
            data = self.cluster.io_scheduler.consume(batch, node, location, result)
            if data is not None:
                return data
        obs = self.cluster.obs
        evictions_before = node.cache.stats.evictions if obs.enabled else 0
        data, from_cache, io_seconds = node.fetch_storage(
            location,
            self.cluster.shared_data,
            info=info,
            use_cache=self.session.use_cache,
        )
        result.io_seconds += io_seconds
        if from_cache:
            result.bytes_from_cache += len(data)
            result.depot_hits += 1
        else:
            result.bytes_from_shared += len(data)
            result.depot_misses += 1
            result.s3_requests += 1
            result.s3_dollars += self._get_dollars
            if obs.enabled:
                obs.tracer.record(
                    "s3_get",
                    duration=io_seconds,
                    node=node.name,
                    object=location,
                    nbytes=len(data),
                    evictions=node.cache.stats.evictions - evictions_before,
                )
        return data

    def _read_container(
        self,
        node,
        state,
        container: ROSContainer,
        columns: Sequence[str],
        result: ScanResult,
        predicate_bounds: Optional[dict] = None,
        batch=None,
    ) -> RowSet:
        info = self._object_info(state, container)
        data = self._fetch_through_depot(
            node, container.location, info, result, batch
        )
        reader = read_container(data)
        dvs = state.delete_vectors_for(str(container.sid))

        # Block-level pruning: decode only blocks whose footer min/max
        # could satisfy the predicate (section 2.3's position index).
        # Delete-vector positions are container-absolute, so pruning is
        # only applied to containers without tombstones.
        if predicate_bounds and not dvs:
            block_indices = reader.matching_blocks(predicate_bounds)
            total_blocks = reader.block_count()
            if len(block_indices) < total_blocks:
                result.blocks_pruned += total_blocks - len(block_indices)
                return reader.read_rowset_blocks(list(columns), block_indices)
        rows = reader.read_rowset(list(columns))

        # Apply delete vectors, if any target this container.
        if dvs:
            position_sets = []
            for dv in dvs:
                dv_data = self._fetch_through_depot(
                    node, dv.location, info, result, batch
                )
                position_sets.append(read_delete_vector(dv_data))
            mask = mask_from_positions(
                combine_positions(position_sets), container.row_count
            )
            rows = rows.filter(mask)
        return rows


def _projection_schema(state, projection_name: str, columns: Sequence[str]):
    from repro.common.types import TableSchema

    projection = state.projections.get(projection_name)
    if projection is not None:
        table = state.table(projection.anchor_table)
        return table.schema.subset([c for c in columns])
    lap = state.live_aggs.get(projection_name)
    if lap is not None:
        table = state.table(lap.anchor_table)
        return lap.output_schema(table.schema).subset(list(columns))
    raise ExecutionError(f"unknown projection {projection_name!r}")

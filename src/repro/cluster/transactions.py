"""Distributed transaction commit for the Eon cluster (section 3.2).

A transaction accumulates catalog ops (global and shard-scoped) plus an
OCC write set.  At commit:

1. the write set is validated against the coordinator's object-version
   index (section 6.3);
2. the subscription invariant is checked — every shard the transaction
   touched must still have the expected subscribers, and a participating
   writer that lost its subscription mid-transaction aborts the commit
   ("if the session sees concurrent subscription changes so that a
   participating node is no longer subscribed to the shard it wrote the
   data into, the transaction is rolled back", section 4.5);
3. the record is applied to every *up* node's catalog, each filtering to
   its subscribed shards — the metadata redistribution of section 3.2.

Down nodes miss the record; recovery replays it from the cluster's log
history (the stand-in for peer metadata transfer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.catalog.mvcc import Op, op_shard_of
from repro.catalog.occ import WriteSet
from repro.catalog.transaction_log import LogRecord
from repro.errors import TransactionAborted
from repro.sharding.subscription import SubscriptionState


@dataclass
class Transaction:
    """An open transaction: buffered ops plus OCC bookkeeping."""

    ops: List[Op] = field(default_factory=list)
    write_set: WriteSet = field(default_factory=WriteSet)
    #: (shard_id, node) pairs that must still be subscribed at commit.
    expected_subscriptions: List[Tuple[int, str]] = field(default_factory=list)
    read_only: bool = True

    def add_op(self, op: Op) -> None:
        self.ops.append(op)
        self.read_only = False

    def expect_subscription(self, shard_id: int, node: str) -> None:
        self.expected_subscriptions.append((shard_id, node))


class CommitCoordinator:
    """Serialises commits and redistributes metadata across nodes."""

    def __init__(self, cluster, base_version: int = 0) -> None:
        self._cluster = cluster
        #: Version the incarnation started from (non-zero after a revive).
        self.base_version = base_version
        self.log_history: List[LogRecord] = []
        self.aborted_commits = 0

    @property
    def version(self) -> int:
        return self.base_version + len(self.log_history)

    def commit(self, txn: Transaction, epoch: int = 0) -> int:
        """Validate and commit; returns the new global catalog version."""
        cluster = self._cluster
        coordinator = cluster.any_up_node()

        # OCC write-set validation against the latest object versions.
        txn.write_set.record_ops(txn.ops, coordinator.catalog.versions)
        try:
            coordinator.catalog.validate_write_set(txn.write_set)
        except TransactionAborted:
            self.aborted_commits += 1
            raise

        # Subscription invariant: writers must still be subscribed.
        state = coordinator.catalog.state
        for shard_id, node in txn.expected_subscriptions:
            sub_state = state.subscriptions.get((node, shard_id))
            if sub_state is None or not SubscriptionState(sub_state).participates_in_commit:
                self.aborted_commits += 1
                raise TransactionAborted(
                    f"node {node} is no longer subscribed to shard {shard_id}; "
                    "rolling back"
                )
        # Every shard touched by a shard-scoped op needs at least one up
        # subscriber to receive the metadata.
        touched_shards = {
            op_shard_of(op) for op in txn.ops if op_shard_of(op) is not None
        }
        for shard_id in touched_shards:
            if not cluster.up_subscribers(shard_id):
                self.aborted_commits += 1
                raise TransactionAborted(
                    f"no up subscriber for shard {shard_id}; rolling back"
                )

        record = LogRecord(
            version=self.version + 1, ops=tuple(txn.ops), epoch=epoch
        )
        self.log_history.append(record)
        for node in cluster.up_nodes():
            node.catalog.apply_commit(record)
        return record.version

    def records_after(self, version: int) -> List[LogRecord]:
        """Commits a recovering node missed (its metadata-transfer diff)."""
        return [r for r in self.log_history if r.version > version]

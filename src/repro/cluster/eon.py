"""The Eon-mode cluster: sharded metadata on shared storage.

This class wires every mechanism in the paper together:

* bootstrap with a fixed segment-shard count and k-subscriber layout
  (section 3.1);
* DDL/DML/COPY through distributed transactions with OCC and subscription
  invariants (sections 3.2, 4.5, 6.3);
* query sessions with max-flow participating-subscription selection,
  subcluster priorities, elastic throughput scaling and crunch scaling
  (section 4);
* node failure and recovery via re-subscription and peer cache warming
  (sections 3.3, 6.1);
* elasticity — adding/removing nodes without data redistribution
  (section 6.4);
* catalog sync to shared storage, consensus truncation version,
  cluster_info and revive support (section 3.5);
* file reaping (section 6.5) and mergeout coordination (section 6.2).
"""

from __future__ import annotations

import itertools
import json
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.catalog.mvcc import (
    op_add_column,
    op_create_live_agg,
    op_create_projection,
    op_create_table,
    op_create_user,
    op_drop_projection,
    op_drop_subscription,
    op_drop_table,
    op_set_property,
    op_set_subscription,
)
from repro.catalog.objects import (
    AggregateSpec as LapAggregateSpec,
    LiveAggregateProjection,
    Projection,
    Segmentation,
    Table,
    User,
)
from repro.catalog.transaction_log import LogStore
from repro.cache.warming import WarmingReport, warm_from_peer
from repro.cluster.node import Node, NodeState
from repro.cluster.reaper import FileReaper
from repro.cluster.session import EonSession, EonStorageProvider
from repro.cluster.transactions import CommitCoordinator, Transaction
from repro.common.clock import SimClock
from repro.common.types import ColumnType, SchemaColumn, TableSchema
from repro.engine.cost import CostModel
from repro.engine.executor import Executor, QueryResult
from repro.engine.pipeline import EngineStats
from repro.engine.planner import plan_query, plan_slot_demand
from repro.errors import (
    CatalogError,
    ClusterError,
    NodeDown,
    QuorumLost,
    ShardCoverageLost,
    StorageUnavailable,
    TransientStorageError,
)
from repro.io.scheduler import IOScheduler, IOSchedulerConfig
from repro.obs import Observability, QueryProfile, RequestRecord
from repro.obs.system_tables import bind_system_tables, system_tables_referenced
from repro.recovery import FailoverPolicy, RebalanceReport, SubscriptionRebalancer
from repro.sharding.assignment import select_participating_subscriptions
from repro.sharding.shard import REPLICA_SHARD_ID, ShardMap
from repro.sharding.subscription import SubscriptionState, validate_transition
from repro.shared_storage.api import Filesystem, PrefixView, RetryingFilesystem, retrying
from repro.shared_storage.s3 import SimulatedS3
from repro.sql.binder import bind_select
from repro.sql.parser import parse
from repro.storage.container import RowSet
from repro.wm.admission import AdmissionController, eon_share_counts


def _describe_select(statement) -> str:
    """Fallback request text when the raw SQL is unavailable (the AST does
    not retain source text — e.g. queries issued via ``query_statement``)."""
    names = [t.name for t in statement.tables]
    names += [j.table.name for j in statement.joins]
    return "SELECT FROM " + ", ".join(names) if names else "SELECT"


class EonCluster:
    """An Eon-mode database over shared storage."""

    def __init__(
        self,
        node_names: Sequence[str],
        shard_count: int,
        shared_storage: Optional[Filesystem] = None,
        subscribers_per_shard: int = 2,
        cache_bytes: int = 256 << 20,
        execution_slots: int = 4,
        seed: int = 0,
        clock: Optional[SimClock] = None,
        cost_model: Optional[CostModel] = None,
        racks: Optional[Dict[str, str]] = None,
        observability: Optional[Observability] = None,
        parallel_io: bool = True,
        io_config: Optional[IOSchedulerConfig] = None,
        batched: bool = False,
        batch_size: int = 1024,
        pushdown: str = "auto",
        _bootstrap: bool = True,
    ):
        if not node_names:
            raise ValueError("cluster needs at least one node")
        self.rng = random.Random(seed)
        self.clock = clock or SimClock()
        self.cost_model = cost_model or CostModel()
        #: Observability is off by default — instrumented paths then cost a
        #: single attribute check (the no-op registry/tracer).
        self.obs = observability or Observability(clock=self.clock, enabled=False)
        self.shard_map = ShardMap(shard_count)
        self.shared = shared_storage or SimulatedS3()
        self.shared_data = PrefixView(self.shared, "data_")
        self.incarnation = f"{self.rng.getrandbits(128):032x}"
        self.subscribers_per_shard = min(subscribers_per_shard, len(node_names))
        self.nodes: Dict[str, Node] = {}
        racks = racks or {}
        for name in node_names:
            self.nodes[name] = Node(
                name,
                cache_bytes=cache_bytes,
                execution_slots=execution_slots,
                rack=racks.get(name),
                rng=random.Random(self.rng.getrandbits(64)),
            )
        #: Parallel depot I/O scheduler for scans; None restores the
        #: strictly serial miss path (the pre-scheduler behaviour).
        self.io_scheduler = (
            IOScheduler(self, io_config) if parallel_io else None
        )
        #: Default execution mode for queries; per-query ``batched=`` /
        #: ``batch_size=`` / ``sip=`` session options override it.
        self.batched = batched
        self.batch_size = batch_size
        #: Default scan-strategy policy (``auto`` | ``on`` | ``off``);
        #: the per-query ``pushdown=`` session option overrides it.
        self.pushdown = pushdown
        self.engine_stats = EngineStats()
        self.coordinator = CommitCoordinator(self)
        self.reaper = FileReaper(self)
        self.subclusters: Dict[str, Set[str]] = {}
        self.last_truncation_version = 0
        self._session_counter = itertools.count()
        self._writer_counters: Dict[int, "itertools.count[int]"] = {}
        self._cluster_info_counter = itertools.count(1)
        self.shut_down = False
        #: True for a sharing cluster attached read-only to another
        #: database's shared storage (section 10).
        self.read_only = False
        self._source_incarnation: Optional[str] = None
        #: Session-level query failover bounds (repro.recovery).
        self.failover_policy = FailoverPolicy()
        self.failovers = 0
        #: Workload manager: per-node execution-slot admission control
        #: (repro.wm).  Every SELECT holds its slot demand for the length
        #: of its execution; concurrent drivers queue on the clock.
        self.admission = AdmissionController(self)
        #: Degraded read-only mode: entered while shared storage is in a
        #: sustained outage window, exited when the window lapses.  The
        #: entry/exit counters are the pairing invariant's observables.
        self.degraded = False
        self.degraded_entries = 0
        self.degraded_exits = 0
        #: Set by ServiceScheduler.__init__ so v_monitor can reach service
        #: stats without the cluster owning a scheduler.
        self.service_scheduler = None
        #: Set by repro.autoscale.Autoscaler when one is attached, so
        #: v_monitor.autoscale_events and cluster_metrics can reach it.
        self.autoscaler = None
        #: DesignerRun records appended by DatabaseDesigner.apply(), read
        #: back through v_monitor.designer_runs.
        self.designer_runs: List = []
        # Outage windows are clock-driven; bind the cluster clock to the
        # backend's fault injector when it has one.
        faults = getattr(self.shared, "faults", None)
        if faults is not None and hasattr(faults, "bind_clock"):
            faults.bind_clock(self.clock)
        if faults is not None and hasattr(faults, "bind_recorder"):
            faults.bind_recorder(self._record_fault_event)
        for node in self.nodes.values():
            self._attach_depot_sink(node)
        if _bootstrap:
            self._bootstrap()

    def enable_observability(
        self, max_requests: int = 512, max_spans: int = 20000
    ) -> Observability:
        """Switch on metrics, tracing, and query profiling (idempotent)."""
        if not self.obs.enabled:
            self.obs = Observability(
                clock=self.clock,
                enabled=True,
                max_requests=max_requests,
                max_spans=max_spans,
            )
        return self.obs

    # -- Data Collector feeds --------------------------------------------------

    def _record_fault_event(self, kind: str, operation: str) -> None:
        """Fault-injector sink → ``dc_fault_injections``.  Called after the
        injection decision, so it cannot perturb RNG state; it draws no RNG
        and charges no requests itself, keeping digests bit-identical."""
        if self.obs.enabled:
            self.obs.dc.record(
                "dc_fault_injections", "", (operation, kind, "")
            )

    def _attach_depot_sink(self, node: Node) -> None:
        """Wire a node's depot to ``dc_depot_events``.  The sink closes
        over the node *name* and reads ``self.obs`` lazily, so it survives
        ``enable_observability`` swaps and cache rebuilds alike."""
        name = node.name

        def sink(event: str, obj: str, size: int) -> None:
            if self.obs.enabled:
                self.obs.dc.record(
                    "dc_depot_events", name, (event, obj, int(size))
                )

        node.cache.event_sink = sink

    # -- bootstrap -----------------------------------------------------------------

    def _bootstrap(self) -> None:
        """Initial subscription layout.

        Walk the logical ring so that (a) every shard gets at least
        ``subscribers_per_shard`` subscribers (fault tolerance), and (b)
        every node subscribes to at least one segment shard — with more
        nodes than shards this is what makes Elastic Throughput Scaling
        work: "a simple case is where there are twice as many nodes as
        segments, effectively producing two clusters" (section 4.2).  The
        replica shard is subscribed by every node.
        """
        names = list(self.nodes)
        shard_count = self.shard_map.count
        txn = Transaction()
        seen = set()
        for i in range(max(len(names), shard_count)):
            node = names[i % len(names)]
            for j in range(self.subscribers_per_shard):
                key = (node, (i + j) % shard_count)
                if key not in seen:
                    seen.add(key)
                    txn.add_op(
                        op_set_subscription(
                            key[0], key[1], SubscriptionState.ACTIVE.value
                        )
                    )
        for node in names:
            txn.add_op(
                op_set_subscription(
                    node, REPLICA_SHARD_ID, SubscriptionState.ACTIVE.value
                )
            )
        self.commit(txn)
        self._refresh_shard_filters()

    def _refresh_shard_filters(self) -> None:
        state = self.any_up_node().catalog.state
        for name, node in self.nodes.items():
            shards = {
                shard for (n, shard), _ in state.subscriptions.items() if n == name
            }
            node.catalog.subscribed_shards = shards or set()

    # -- membership ---------------------------------------------------------------

    def up_nodes(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.is_up]

    def any_up_node(self) -> Node:
        for node in self.nodes.values():
            if node.is_up:
                return node
        raise QuorumLost("no nodes are up")

    @property
    def version(self) -> int:
        return self.coordinator.version

    def subscribers(self, shard_id: int) -> List[str]:
        """Nodes subscribed to a shard (any state), up or down."""
        state = self.any_up_node().catalog.state
        return sorted(
            n for (n, s), _ in state.subscriptions.items() if s == shard_id
        )

    def active_subscribers(self, shard_id: int) -> List[str]:
        state = self.any_up_node().catalog.state
        return sorted(
            n
            for (n, s), st in state.subscriptions.items()
            if s == shard_id and st == SubscriptionState.ACTIVE.value
        )

    def up_subscribers(self, shard_id: int) -> List[str]:
        return [
            n
            for n in self.subscribers(shard_id)
            if n in self.nodes and self.nodes[n].is_up
        ]

    def active_up_subscribers(self, shard_id: int) -> List[str]:
        return [
            n for n in self.active_subscribers(shard_id) if self.nodes[n].is_up
        ]

    # -- invariant accessors (simulation-test hook points) -------------------------

    def uncovered_shards(self) -> List[int]:
        """Shards with no up ACTIVE subscriber.

        The global invariant (section 3.4) is that this list is empty
        whenever the cluster is accepting work; a non-empty list is only
        legitimate once the cluster has shut itself down.
        """
        if not any(n.is_up for n in self.nodes.values()):
            return list(self.shard_map.all_shard_ids())
        return [
            shard_id
            for shard_id in self.shard_map.all_shard_ids()
            if not self.active_up_subscribers(shard_id)
        ]

    def all_catalog_sids(self, include_pinned: bool = True) -> Set[str]:
        """Every storage name referenced by any up node's catalog.

        With ``include_pinned``, states still pinned by running queries
        count too — a file is only dereferenced once *no* reachable
        catalog state mentions it.
        """
        sids: Set[str] = set()
        for node in self.up_nodes():
            sids |= node.catalog.state.storage_sids()
            if include_pinned:
                for state in node.catalog.pinned_states():
                    sids |= state.storage_sids()
        return sids

    def running_instance_prefixes(self) -> List[str]:
        """SID name prefixes of every live node instance.

        A shared-storage object carrying one of these prefixes may be an
        in-flight upload (written, not yet committed), so the reaper's
        leaked-file sweep must not touch it (section 6.5).
        """
        return [
            node.sid_factory.next_sid(local_oid=0).prefix
            for node in self.up_nodes()
        ]

    def check_viability(self) -> None:
        """Cluster invariants (section 3.4): quorum plus shard coverage.

        On violation the cluster shuts down "to avoid divergence or wrong
        answers"."""
        up = len(self.up_nodes())
        if up * 2 <= len(self.nodes):
            self.shut_down = True
            raise QuorumLost(
                f"only {up} of {len(self.nodes)} nodes up; quorum lost"
            )
        for shard_id in self.shard_map.all_shard_ids():
            if not self.active_up_subscribers(shard_id):
                self.shut_down = True
                raise ShardCoverageLost(
                    f"shard {shard_id} has no up ACTIVE subscriber"
                )

    # -- degraded mode (sustained shared-storage outage) ---------------------------

    def refresh_degraded(self) -> bool:
        """Fold the shared-storage outage flag into cluster state.

        Entry and exit are deterministic — purely a function of the sim
        clock against the declared outage window, never of RNG state or
        poll ordering — and always paired: the flag cannot flip the same
        way twice in a row, so ``degraded_entries`` and ``degraded_exits``
        differ by at most one (the pairing invariant the sim checks).

        While degraded the cluster is read-only over depot-resident data:
        commits and loads fail fast with :class:`StorageUnavailable`, and
        the maintenance services pause instead of burning error counters.
        """
        outage = bool(getattr(self.shared, "outage_active", False))
        if outage and not self.degraded:
            self.degraded = True
            self.degraded_entries += 1
            if self.obs.enabled:
                self.obs.metrics.counter("recovery.degraded_entries").inc()
                self.obs.tracer.record("degraded.enter", t=self.clock.now)
        elif not outage and self.degraded:
            self.degraded = False
            self.degraded_exits += 1
            if self.obs.enabled:
                self.obs.metrics.counter("recovery.degraded_exits").inc()
                self.obs.tracer.record("degraded.exit", t=self.clock.now)
        return self.degraded

    # -- transactions ----------------------------------------------------------------

    def begin(self) -> Transaction:
        return Transaction()

    def commit(self, txn: Transaction, epoch: Optional[int] = None) -> int:
        if self.shut_down:
            raise ClusterError("cluster is shut down")
        if self.read_only:
            raise ClusterError(
                "this is a read-only sharing cluster; writes must go "
                "through the primary"
            )
        if self.refresh_degraded():
            # Degraded read-only mode: commit durability rests on shared
            # storage (Figure 8's upload-before-commit), which is out.
            # Fail fast rather than retrying into a declared outage.
            raise StorageUnavailable(
                "cluster is in degraded read-only mode during a "
                "shared-storage outage; writes are rejected"
            )
        if epoch is None:
            epoch = int(self.clock.now)
        # Reference counting (section 6.5): a storage name referenced
        # before the commit and by nobody after has hit refcount zero and
        # belongs to the reaper.  Diffing the referenced set — rather than
        # scanning the txn for explicit drop ops — also catches cascaded
        # dereferences: dropping a container removes its delete vectors,
        # dropping a table removes every container under it, and a
        # same-transaction re-add (partition move) keeps the file live.
        dropping = any(op["op"].startswith("drop_") for op in txn.ops)
        before = self._referenced_sids() if dropping else None
        version = self.coordinator.commit(txn, epoch=epoch)
        self._after_commit(txn, before)
        return version

    def _referenced_sids(self) -> Set[str]:
        sids: Set[str] = set()
        for node in self.up_nodes():
            sids |= node.catalog.state.storage_sids()
        return sids

    def _after_commit(self, txn: Transaction, before: Optional[Set[str]] = None) -> None:
        sub_change = any(
            op["op"] in ("set_subscription", "drop_subscription")
            for op in txn.ops
        )
        if before is not None:
            for sid in sorted(before - self._referenced_sids()):
                for node in self.up_nodes():
                    node.cache.drop(sid)
                self.reaper.note_drop(sid, self.version)
        if sub_change:
            self._refresh_shard_filters()

    # -- DDL ----------------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[Tuple[str, ColumnType]],
        partition_by: Optional[str] = None,
        create_super: bool = True,
        flattened: Sequence = (),
    ) -> int:
        schema = TableSchema([SchemaColumn(n, t) for n, t in columns])
        table = Table(
            name=name, schema=schema, partition_by=partition_by,
            flattened=tuple(flattened),
        )
        txn = self.begin()
        txn.add_op(op_create_table(table))
        if create_super:
            super_proj = Projection(
                name=f"{name}_super",
                anchor_table=name,
                columns=tuple(schema.names),
                sort_order=(schema.names[0],),
                segmentation=Segmentation.by_hash(schema.names[0]),
            )
            txn.add_op(op_create_projection(super_proj))
        return self.commit(txn)

    def create_projection(
        self,
        name: str,
        table: str,
        columns: Sequence[str],
        sort_order: Sequence[str],
        segmentation: Segmentation,
        refresh: bool = True,
    ) -> int:
        """Create a projection; if the table already has data and
        ``refresh`` is set, populate the new projection from an existing
        one (Vertica's projection refresh)."""
        needs_refresh = self._table_has_data(table)
        if needs_refresh and not refresh:
            raise CatalogError(
                f"cannot add projection to non-empty table {table!r} "
                "without refresh"
            )
        projection = Projection(
            name=name,
            anchor_table=table,
            columns=tuple(columns),
            sort_order=tuple(sort_order),
            segmentation=segmentation,
        )
        # Snapshot the table contents *before* the new (empty) projection
        # exists, so the refresh scan reads through an existing projection.
        refresh_rows = self._table_snapshot_rows(table, columns) if needs_refresh else None
        # One transaction for create + refresh: the projection and its
        # containers become visible together, so no catalog version ever
        # shows an *empty* projection of a non-empty table (which the
        # planner could pick and silently return no rows from).  Container
        # files upload before the commit under this instance's prefix, so
        # a failed commit leaks only reaper-recoverable files.
        txn = self.begin()
        txn.add_op(op_create_projection(projection))
        if refresh_rows is not None:
            from repro.load.copy import CopyReport, _load_projection

            state = self.any_up_node().catalog.state
            report = CopyReport()
            _load_projection(
                self, state.table(table), projection, refresh_rows,
                txn, report, True,
            )
        return self.commit(txn)

    def _table_snapshot_rows(self, table_name: str, columns: Sequence[str]) -> RowSet:
        column_list = ", ".join(columns)
        result = self.query(f"select {column_list} from {table_name}")
        table = self.any_up_node().catalog.state.table(table_name)
        # Re-type to the table schema (query output schema is inferred).
        schema = table.schema.subset(list(columns))
        return RowSet(schema, dict(result.rows.columns))

    def drop_projections(self, names: Sequence[str]) -> int:
        """Drop projections in one transaction (the designer drops every
        superseded ``_dbd`` version atomically once replacements exist).

        Refuses to drop a table's last projection: a table must stay
        readable.  Refcount-zero container files are reaped by the commit
        path's referenced-set diff."""
        state = self.any_up_node().catalog.state
        remaining: Dict[str, int] = {}
        for name in names:
            projection = state.projection(name)  # raises CatalogError if missing
            table = projection.anchor_table
            if table not in remaining:
                remaining[table] = len(
                    [p for p in state.projections_of(table) if not p.is_buddy]
                )
            remaining[table] -= 1
            if remaining[table] < 1:
                raise CatalogError(
                    f"cannot drop {name!r}: it is the last projection of "
                    f"table {table!r}"
                )
        txn = self.begin()
        for name in names:
            txn.add_op(op_drop_projection(name))
        return self.commit(txn)

    def drop_projection(self, name: str) -> int:
        return self.drop_projections([name])

    def _table_has_data(self, table: str) -> bool:
        # Storage metadata is sharded: a single node's catalog only covers
        # its subscribed shards, so consult every up node.
        for node in self.up_nodes():
            state = node.catalog.state
            for projection in state.projections_of(table):
                if state.containers_of(projection.name):
                    return True
        return False

    def create_live_aggregate(
        self,
        name: str,
        table: str,
        group_by: Sequence[str],
        aggregates: Sequence[Tuple[str, Optional[str], str]],  # (func, arg, out)
        segmentation: Optional[Segmentation] = None,
    ) -> int:
        if self._table_has_data(table):
            raise CatalogError(
                f"cannot add live aggregate to non-empty table {table!r}"
            )
        lap = LiveAggregateProjection(
            name=name,
            anchor_table=table,
            group_by=tuple(group_by),
            aggregates=tuple(
                LapAggregateSpec(func, arg, out) for func, arg, out in aggregates
            ),
            segmentation=segmentation or Segmentation.by_hash(group_by[0]),
        )
        txn = self.begin()
        txn.add_op(op_create_live_agg(lap))
        return self.commit(txn)

    def create_user(self, name: str, is_superuser: bool = False) -> int:
        txn = self.begin()
        txn.add_op(op_create_user(User(name, is_superuser)))
        return self.commit(txn)

    def add_column(
        self, table: str, column: str, ctype: ColumnType, txn: Optional[Transaction] = None
    ) -> int:
        """ADD COLUMN under OCC (section 6.3): pass an explicit ``txn``
        begun earlier to model offline metadata preparation; commit-time
        validation aborts if the table changed in between."""
        own = txn is None
        if txn is None:
            txn = self.begin()
        txn.add_op(op_add_column(table, SchemaColumn(column, ctype)))
        if own:
            return self.commit(txn)
        return -1

    # -- SQL front door ------------------------------------------------------------------

    def execute(self, sql: str, **session_options):
        """Run one or more SQL statements; returns the last result."""
        from repro.engine.expressions import Expr
        from repro.sql.ast import (
            AddColumn,
            CreateProjection,
            CreateTable,
            Delete,
            DropTable,
            Insert,
            Select,
            Update,
        )
        from repro.load.copy import copy_into
        from repro.load.dml import delete_from, update_table

        result = None
        for statement in parse(sql):
            if isinstance(statement, Select):
                result = self.query_statement(statement, **session_options)
            elif isinstance(statement, CreateTable):
                result = self.create_table(
                    statement.name,
                    [
                        (c.name, ColumnType.from_sql(c.type_name))
                        for c in statement.columns
                    ],
                    partition_by=statement.partition_by,
                )
            elif isinstance(statement, CreateProjection):
                seg = (
                    Segmentation.by_hash(*statement.segmented_by)
                    if statement.segmented_by
                    else Segmentation.replicated()
                )
                state = self.any_up_node().catalog.state
                columns = statement.columns or list(
                    state.table(statement.table).schema.names
                )
                result = self.create_projection(
                    statement.name,
                    statement.table,
                    columns,
                    statement.order_by or [columns[0]],
                    seg,
                )
            elif isinstance(statement, Insert):
                state = self.any_up_node().catalog.state
                schema = state.table(statement.table).schema
                rows = RowSet.from_rows(schema, statement.rows)
                result = copy_into(self, statement.table, rows)
            elif isinstance(statement, Delete):
                result = delete_from(self, statement.table, statement.where)
            elif isinstance(statement, Update):
                result = update_table(
                    self, statement.table, statement.assignments, statement.where
                )
            elif isinstance(statement, AddColumn):
                result = self.add_column(
                    statement.table,
                    statement.column.name,
                    ColumnType.from_sql(statement.column.type_name),
                )
            elif isinstance(statement, DropTable):
                txn = self.begin()
                txn.add_op(op_drop_table(statement.name))
                result = self.commit(txn)
            else:
                raise CatalogError(f"unsupported statement {statement!r}")
        return result

    def load(self, table: str, rows, use_cache: bool = True):
        """Programmatic COPY: ``rows`` is a RowSet or list of tuples."""
        from repro.load.copy import copy_into

        if not isinstance(rows, RowSet):
            table_obj = self.any_up_node().catalog.state.table(table)
            schema = table_obj.schema
            rows = list(rows)
            if (
                table_obj.flattened
                and rows
                and len(rows[0]) == len(table_obj.base_columns)
            ):
                schema = schema.subset(table_obj.base_columns)
            rows = RowSet.from_rows(schema, rows)
        return copy_into(self, table, rows, use_cache=use_cache)

    def refresh_flattened(self, table: str) -> int:
        """Re-derive a flattened table's denormalised columns from the
        current dimension contents (section 2.1's refresh mechanism)."""
        from repro.load.flattened import refresh_flattened

        return refresh_flattened(self, table, epoch=int(self.clock.now))

    def drop_partition(self, table: str, partition_key: object) -> int:
        """Metadata-only partition drop (section 4.5); returns rows dropped."""
        from repro.load.partitions import drop_partition

        return drop_partition(self, table, partition_key)

    def move_partition(self, source: str, target: str, partition_key: object) -> int:
        """Metadata-only partition move between structurally matching
        tables; the data files are shared, never copied (section 5.1)."""
        from repro.load.partitions import move_partition

        return move_partition(self, source, target, partition_key)

    # -- sessions & queries ------------------------------------------------------------------

    def create_session(
        self,
        initiator: Optional[str] = None,
        subcluster: Optional[str] = None,
        crunch: Optional[str] = None,
        nodes_per_shard: int = 1,
        use_cache: bool = True,
        seed: Optional[int] = None,
        prefer_initiator_rack: bool = True,
    ) -> EonSession:
        """Select participating subscriptions for a new session.

        ``crunch`` ("hash" or "container") with ``nodes_per_shard`` > 1
        spreads each shard over several nodes (section 4.4).
        """
        if self.shut_down:
            raise ClusterError("cluster is shut down")
        if seed is None:
            seed = self.rng.getrandbits(32) ^ next(self._session_counter)
        up_active: Dict[int, List[str]] = {
            shard: self.active_up_subscribers(shard)
            for shard in self.shard_map.shard_ids()
        }
        if initiator is None:
            candidates = (
                sorted(self.subclusters.get(subcluster, set()))
                if subcluster
                else sorted(n.name for n in self.up_nodes())
            )
            candidates = [c for c in candidates if self.nodes[c].is_up]
            if not candidates:
                # The whole subcluster is down: the workload escapes to the
                # rest of the cluster (section 4.3's failure clause).
                candidates = sorted(n.name for n in self.up_nodes())
            # Steer new sessions away from draining pools (scale-in in
            # progress) when any non-draining node can take them; with
            # nothing draining this filter is the identity, so session
            # placement — and therefore every digest — is unchanged.
            draining = set(self.admission.draining_nodes())
            if draining:
                open_candidates = [c for c in candidates if c not in draining]
                if open_candidates:
                    candidates = open_candidates
            if not candidates:
                raise NodeDown("no up node available as initiator")
            initiator = candidates[seed % len(candidates)]
        priority_tiers = None
        if subcluster is not None:
            members = {
                n for n in self.subclusters.get(subcluster, set()) if self.nodes[n].is_up
            }
            if members:
                priority_tiers = [members]
        elif prefer_initiator_rack and self.nodes[initiator].rack is not None:
            # Rack-aware layout (section 4.1): "the starting graph includes
            # only nodes on the same physical rack, encouraging an
            # assignment that avoids sending network data across
            # bandwidth-constrained links."  Lower tiers join only if the
            # rack cannot cover every shard.
            rack = self.nodes[initiator].rack
            same_rack = {
                n.name for n in self.up_nodes() if n.rack == rack
            }
            if same_rack:
                priority_tiers = [same_rack]
        assignment = select_participating_subscriptions(
            self.shard_map.shard_ids(), up_active, priority_tiers, seed=seed
        )
        sharing: Dict[int, List[str]] = {}
        if crunch is not None and nodes_per_shard > 1:
            for shard, primary in assignment.items():
                extras = [
                    n for n in up_active[shard] if n != primary
                ][: nodes_per_shard - 1]
                sharing[shard] = [primary] + extras
        else:
            sharing = {shard: [node] for shard, node in assignment.items()}
        snapshots = {}
        needed = {n for nodes in sharing.values() for n in nodes} | {initiator}
        for name in needed:
            snapshots[name] = self.nodes[name].catalog.snapshot()
        return EonSession(
            cluster=self,
            initiator=initiator,
            assignment=assignment,
            sharing=sharing,
            crunch=crunch,
            snapshots=snapshots,
            use_cache=use_cache,
            seed=seed,
        )

    def query(self, sql: str, **session_options) -> QueryResult:
        from repro.sql.ast import Select

        statements = parse(sql)
        if len(statements) != 1 or not isinstance(statements[0], Select):
            raise CatalogError("query() accepts a single SELECT")
        return self.query_statement(
            statements[0], request_text=sql.strip(), **session_options
        )

    def query_statement(
        self,
        statement,
        session: Optional[EonSession] = None,
        request_text: Optional[str] = None,
        failover: Optional[bool] = None,
        ticket=None,
        **session_options,
    ) -> QueryResult:
        # Engine options are executor-level, not session-level: pop them
        # before anything (crunch probe, create_session) sees the kwargs.
        engine_options = {
            "batched": session_options.pop("batched", self.batched),
            "batch_size": session_options.pop("batch_size", self.batch_size),
            "sip": session_options.pop("sip", True),
            "pushdown": session_options.pop("pushdown", self.pushdown),
        }
        if session is None and session_options.get("crunch") == "auto":
            session_options["crunch"] = self._choose_crunch_mode(
                statement, **{k: v for k, v in session_options.items() if k != "crunch"}
            )
        # Failover defaults on for cluster-owned sessions (the caller never
        # saw the participant list, so re-selecting it is transparent).  An
        # explicitly passed session opts in with ``failover=True``; retries
        # then run on fresh sessions while the caller's stays theirs to
        # release.
        if failover is None:
            failover = session is None
        policy = self.failover_policy
        attempt = 0
        penalty = 0.0
        current = session
        while True:
            own_session = current is None
            if own_session:
                current = self.create_session(**session_options)
            try:
                # A caller-supplied admission ticket (the concurrent
                # driver's) spans the whole query including failover
                # retries; without one, each attempt admits itself.
                return self._execute_statement(
                    statement, current, request_text, penalty, ticket,
                    engine_options,
                )
            except (NodeDown, TransientStorageError) as exc:
                attempt += 1
                if (
                    not failover
                    or self.shut_down
                    or attempt >= policy.max_attempts
                    or (isinstance(exc, NodeDown) and self.uncovered_shards())
                ):
                    raise
                # Session-level failover: a participant died mid-query (or a
                # shard's reads exhausted their retries) but the surviving up
                # ACTIVE subscribers still cover every shard, so re-select
                # participating subscriptions and re-execute.  The backoff is
                # charged to the query's cost-model latency, not wall-clock.
                penalty += policy.backoff_for(attempt)
                self.failovers += 1
                if self.obs.enabled:
                    self.obs.metrics.counter("recovery.failovers").inc()
                    self.obs.tracer.record(
                        "query.failover",
                        attempt=attempt,
                        error=type(exc).__name__,
                        initiator=current.initiator,
                    )
                    self.obs.dc.record(
                        "dc_query_events",
                        current.initiator,
                        (0, "failover", type(exc).__name__, float(attempt)),
                    )
            finally:
                if own_session:
                    current.release()
            current = None

    def _execute_statement(
        self,
        statement,
        session,
        request_text: Optional[str],
        penalty: float = 0.0,
        ticket=None,
        engine_options: Optional[Dict[str, object]] = None,
    ) -> QueryResult:
        """One execution attempt against an already-selected session."""
        snapshot = session.snapshots[session.initiator]
        state = snapshot.state
        provider: object = EonStorageProvider(session)
        # ``v_monitor.*`` references get virtual tables injected into a
        # copy of the snapshot state; binding/planning then proceed as
        # for any other table.  Rows materialize here — before admission —
        # so a monitor query observes steady-state slot usage, not its own.
        system_names = system_tables_referenced(statement)
        if system_names:
            # The statement rides along so partitioned dc_* producers can
            # prune on its time/node bounds before materializing.
            state, provider = bind_system_tables(
                self, state, provider, system_names, statement=statement
            )
        bound = bind_select(statement, state)
        plan = plan_query(bound, state)
        own_ticket = None
        # Pure monitor reads bypass admission: observability must stay
        # usable on a saturated cluster (the moment you most need it).
        if ticket is None and self.admission is not None and not system_names:
            demand = plan_slot_demand(
                plan, eon_share_counts(session), session.initiator
            )
            own_ticket = self.admission.admit(demand, session.initiator)
            ticket = own_ticket
        # Queue wait joins the failover backoff in dispatch time, so the
        # recorded latency/profile/span covers the whole admission story.
        queue_wait = ticket.queue_wait_seconds if ticket is not None else 0.0
        extra = penalty + queue_wait
        try:
            # Monitor queries are not themselves recorded: profiling the
            # profiler would recurse (this query would appear in the very
            # tables it reads, mid-materialization).
            record = self.obs.enabled and not system_names
            executor = Executor(
                provider, self.cost_model, obs=self.obs if record else None,
                **(engine_options or {}),
            )
            if not record:
                result = executor.execute(plan)
                if extra:
                    result.stats.dispatch_seconds += extra
            else:
                result = self._record_query(
                    statement, session, executor, plan, request_text,
                    penalty=penalty, queue_wait=queue_wait,
                    had_ticket=ticket is not None,
                )
            self.engine_stats.note(executor)
            return result
        finally:
            if own_ticket is not None:
                self.admission.release(own_ticket)

    def _record_query(
        self,
        statement,
        session,
        executor,
        plan,
        request_text: Optional[str],
        penalty: float = 0.0,
        queue_wait: float = 0.0,
        had_ticket: bool = False,
    ) -> QueryResult:
        """Execute under a ``query`` span and log request/profile records."""
        obs = self.obs
        shared_metrics = self.shared.metrics
        gets_before = shared_metrics.get_requests
        dollars_before = shared_metrics.dollars
        retries_before = shared_metrics.transient_failures
        backoff_before = shared_metrics.retry_backoff_seconds
        io_before = shared_metrics.sim_seconds
        hits_before = sum(n.cache.stats.hits for n in self.nodes.values())
        misses_before = sum(n.cache.stats.misses for n in self.nodes.values())
        request_id = obs.next_request_id()
        text = request_text or _describe_select(statement)
        start = self.clock.now
        extra = penalty + queue_wait
        with obs.tracer.span(
            "query", request_id=request_id, initiator=session.initiator
        ) as span:
            result = executor.execute(plan)
            # Failover backoff from earlier attempts and admission queue
            # wait land in dispatch time, so the recorded latency covers
            # the whole retry + admission story.
            if extra:
                result.stats.dispatch_seconds += extra
            # Queries don't advance the sim clock; the cost model's latency
            # is the query's duration.
            span.duration = result.stats.latency_seconds
            span.annotate(rows=result.rows.num_rows)
        latency = result.stats.latency_seconds
        obs.requests.append(
            RequestRecord(
                request_id=request_id,
                node_name=session.initiator,
                request=text,
                start_seconds=start,
                duration_seconds=latency,
                rows_produced=result.rows.num_rows,
                depot_hits=sum(n.cache.stats.hits for n in self.nodes.values())
                - hits_before,
                depot_misses=sum(n.cache.stats.misses for n in self.nodes.values())
                - misses_before,
                s3_requests=shared_metrics.get_requests - gets_before,
                s3_dollars=shared_metrics.dollars - dollars_before,
                queue_wait_seconds=queue_wait,
                failover_backoff_seconds=penalty,
                retry_backoff_seconds=shared_metrics.retry_backoff_seconds
                - backoff_before,
                retries=shared_metrics.transient_failures - retries_before,
                storage_io_seconds=shared_metrics.sim_seconds - io_before,
            )
        )
        initiator = session.initiator
        if had_ticket:
            obs.dc.record(
                "dc_query_events", initiator,
                (request_id, "admit", "", queue_wait),
            )
        if queue_wait > 0:
            obs.dc.record(
                "dc_query_events", initiator,
                (request_id, "queue", "", queue_wait),
            )
        if penalty > 0:
            obs.dc.record(
                "dc_query_events", initiator,
                (request_id, "failover", "backoff", penalty),
            )
        obs.dc.record(
            "dc_query_events", initiator,
            (request_id, "execute", text[:80], latency),
        )
        obs.profiles.append(
            QueryProfile(
                request_id=request_id,
                request=text,
                initiator=session.initiator,
                start_seconds=start,
                latency_seconds=latency,
                operators=tuple(executor.op_profiles),
            )
        )
        obs.metrics.counter("query.count", node=session.initiator).inc()
        obs.metrics.counter("query.rows_produced", node=session.initiator).inc(
            result.rows.num_rows
        )
        obs.metrics.histogram("query.latency_seconds").observe(latency)
        return result

    def _choose_crunch_mode(self, statement, **session_options) -> str:
        """Cost-based crunch mode choice (section 4.4: "a likely candidate
        for using Vertica's cost-based optimizer").

        Container split reads each byte once but destroys the segmentation
        property; hash-filter split re-reads but preserves it.  So: if the
        plan profits from co-location (a local join with a segmented build
        side, or a one-phase aggregate), pick hash-filter; otherwise pick
        container split for its lower I/O.
        """
        from repro.engine.plan import AggregateNode, JoinNode, ScanNode, walk

        session_options.pop("nodes_per_shard", None)
        with self.create_session(**session_options) as probe:
            snapshot = probe.snapshots[probe.initiator]
            bound = bind_select(statement, snapshot.state)
            plan = plan_query(bound, snapshot.state)
        for node in walk(plan.root):
            if isinstance(node, JoinNode) and node.locality == "local":
                if not (isinstance(node.right, ScanNode) and node.right.replicated):
                    return "hash"
            if isinstance(node, AggregateNode) and node.strategy == "one_phase":
                if not plan.single_node:
                    return "hash"
        return "container"

    # -- writer selection for loads -------------------------------------------------------------

    def writer_for_shard(self, shard_id: int) -> str:
        """Round-robin over a shard's up ACTIVE subscribers.

        Each shard rotates independently so concurrent statements spread
        writers instead of piling onto one node.
        """
        candidates = self.active_up_subscribers(shard_id)
        if not candidates:
            raise ShardCoverageLost(f"no up ACTIVE subscriber for shard {shard_id}")
        counter = self._writer_counters.setdefault(shard_id, itertools.count())
        return candidates[next(counter) % len(candidates)]

    # -- subscription management -------------------------------------------------------------------

    def _current_sub_state(self, node: str, shard_id: int) -> Optional[SubscriptionState]:
        state = self.any_up_node().catalog.state
        value = state.subscriptions.get((node, shard_id))
        return SubscriptionState(value) if value is not None else None

    def _commit_sub_state(self, node: str, shard_id: int, target: SubscriptionState) -> None:
        validate_transition(self._current_sub_state(node, shard_id), target)
        txn = self.begin()
        txn.add_op(op_set_subscription(node, shard_id, target.value))
        self.commit(txn)

    def subscribe(
        self, node_name: str, shard_id: int, warm_cache: bool = True
    ) -> Optional[WarmingReport]:
        """The subscription process of section 3.3 / Figure 4."""
        node = self.nodes[node_name]
        node.ensure_up()
        self._commit_sub_state(node_name, shard_id, SubscriptionState.PENDING)
        # Metadata transfer: in-process nodes share the commit stream, so a
        # node's catalog already holds global objects; shard-filtered ops it
        # skipped must be backfilled from a peer's catalog.
        self._backfill_shard_metadata(node, shard_id)
        self._commit_sub_state(node_name, shard_id, SubscriptionState.PASSIVE)
        report = None
        if warm_cache:
            report = self._warm_cache_from_peer(node, shard_id)
        self._commit_sub_state(node_name, shard_id, SubscriptionState.ACTIVE)
        # The backfill edited catalog state without log records, so a
        # restart's log replay cannot reproduce it.  Checkpointing now pins
        # the post-backfill state as the recovery base, keeping replay's
        # shard filter consistent with the log span it covers.
        node.catalog.write_checkpoint()
        return report

    def _full_metadata_rebuild(self, node: Node) -> None:
        """Rebuild a node's whole catalog from peers (instance loss or a
        history gap): global objects from any peer, then each subscribed
        shard's storage metadata from that shard's subscribers."""
        peer = self.any_up_node()
        rebuilt = peer.catalog.state.copy()
        shards = node.catalog.subscribed_shards or set()
        for sid, container in list(rebuilt.containers.items()):
            if container.shard_id not in shards:
                del rebuilt.containers[sid]
        for sid, dv in list(rebuilt.delete_vectors.items()):
            if dv.shard_id not in shards:
                del rebuilt.delete_vectors[sid]
        node.catalog.state = rebuilt
        node.catalog._recent = {rebuilt.version: rebuilt}
        from repro.catalog.occ import ObjectVersions

        versions = ObjectVersions()
        versions._versions = dict(peer.catalog.versions._versions)
        node.catalog.versions = versions
        for shard_id in shards:
            self._backfill_shard_metadata(node, shard_id)
        node.catalog.write_checkpoint()

    def _backfill_shard_metadata(self, node: Node, shard_id: int) -> None:
        """Copy a shard's storage metadata from an existing subscriber."""
        peers = [
            self.nodes[n]
            for n in self.up_subscribers(shard_id)
            if n != node.name and self.nodes[n].is_up
        ]
        if not peers:
            return
        source = peers[0].catalog.state
        target_state = node.catalog.state.copy()
        changed = False
        for sid, container in source.containers.items():
            if container.shard_id == shard_id and sid not in target_state.containers:
                target_state.containers[sid] = container
                changed = True
        for sid, dv in source.delete_vectors.items():
            if dv.shard_id == shard_id and sid not in target_state.delete_vectors:
                target_state.delete_vectors[sid] = dv
                changed = True
        if changed:
            node.catalog.state = target_state
            node.catalog._recent[target_state.version] = target_state

    def _warm_cache_from_peer(self, node: Node, shard_id: int) -> Optional[WarmingReport]:
        """Pick a warming peer (same subcluster first — section 5.2)."""
        peers = [
            n
            for n in self.active_up_subscribers(shard_id)
            if n != node.name
        ]
        if not peers:
            return None
        same_subcluster = [
            p for p in peers if self.nodes[p].subcluster == node.subcluster
        ]
        peer = self.nodes[(same_subcluster or peers)[0]]
        report = warm_from_peer(
            node.cache, peer.cache, self.shared_data, shard_id=shard_id
        )
        if self.obs.enabled and report is not None:
            self.obs.tracer.record(
                "depot_warming",
                node=node.name,
                peer=peer.name,
                shard=shard_id,
                copied_from_peer=report.copied_from_peer,
                fetched_from_shared=report.fetched_from_shared,
                bytes_transferred=report.bytes_transferred,
            )
            self.obs.metrics.counter("depot.warming_bytes", node=node.name).inc(
                report.bytes_transferred
            )
        return report

    def unsubscribe(self, node_name: str, shard_id: int) -> None:
        """The unsubscription process of section 3.3: REMOVING, wait for
        coverage, drop metadata + cache, drop the subscription."""
        self._commit_sub_state(node_name, shard_id, SubscriptionState.REMOVING)
        others = [
            n for n in self.active_up_subscribers(shard_id) if n != node_name
        ]
        if not others:
            # Cannot drop: the shard would lose fault tolerance.  Back out.
            self._commit_sub_state(node_name, shard_id, SubscriptionState.ACTIVE)
            raise ShardCoverageLost(
                f"cannot unsubscribe {node_name} from shard {shard_id}: "
                "no other ACTIVE subscriber"
            )
        self._drop_subscription(node_name, shard_id)

    def _drop_subscription(self, node_name: str, shard_id: int) -> None:
        """Complete a removal: drop cached files, commit the drop, trim the
        node's copy of the shard's metadata, checkpoint.  Shared by
        ``unsubscribe`` and by recovery of a node that died mid-unsubscribe
        (its REMOVING subscription is finished here, since REMOVING ->
        PENDING is not a legal Figure-4 transition)."""
        node = self.nodes[node_name]
        state = node.catalog.state
        for sid, container in list(state.containers.items()):
            if container.shard_id == shard_id:
                node.cache.drop(sid)
        txn = self.begin()
        txn.add_op(op_drop_subscription(node_name, shard_id))
        self.commit(txn)
        # Shard filter refresh in _after_commit trims future metadata; the
        # node also forgets the shard's existing storage objects.
        trimmed = node.catalog.state.copy()
        for sid, container in list(trimmed.containers.items()):
            if container.shard_id == shard_id:
                del trimmed.containers[sid]
        for sid, dv in list(trimmed.delete_vectors.items()):
            if dv.shard_id == shard_id:
                del trimmed.delete_vectors[sid]
        node.catalog.state = trimmed
        node.catalog._recent[trimmed.version] = trimmed
        # As in subscribe(): the trim is surgery the log never saw, so a
        # later restart must recover from a post-trim checkpoint.
        node.catalog.write_checkpoint()

    # -- failure & recovery -------------------------------------------------------------------------

    def kill_node(self, name: str, lose_local_disk: bool = False) -> None:
        self.nodes[name].go_down(lose_local_disk=lose_local_disk)
        self.check_viability()

    def recover_node(self, name: str, warm_cache: bool = True) -> Dict[int, Optional[WarmingReport]]:
        """Node recovery (section 6.1): restart, catch up metadata, force
        re-subscription, incremental cache warm, serve again."""
        node = self.nodes[name]
        if node.is_up:
            raise ClusterError(f"node {name} is already up")
        node.restart()
        # Metadata catch-up: replay the commits this node missed (the
        # incremental shard diff of section 6.1).  If the history no longer
        # reaches back far enough (e.g. the cluster revived into a new
        # incarnation while the node was down), rebuild from a peer.
        missed = self.coordinator.records_after(node.catalog.state.version)
        if missed and missed[0].version != node.catalog.state.version + 1:
            self._full_metadata_rebuild(node)
        elif not missed and node.catalog.state.version != self.version:
            self._full_metadata_rebuild(node)
        else:
            for record in missed:
                node.catalog.apply_commit(record)
        node.state = NodeState.UP
        # Forced re-subscription: ACTIVE -> PENDING -> PASSIVE -> (warm) -> ACTIVE.
        state = self.any_up_node().catalog.state
        sub_states = {
            shard: SubscriptionState(st)
            for (n, shard), st in state.subscriptions.items()
            if n == name
        }
        reports: Dict[int, Optional[WarmingReport]] = {}
        for shard_id in sorted(sub_states):
            current = sub_states[shard_id]
            if current is SubscriptionState.REMOVING:
                # The node died mid-unsubscribe.  REMOVING -> PENDING is
                # not a legal Figure-4 transition: when the shard is
                # covered without this node, finish what the unsubscribe
                # started; otherwise abandon the removal (REMOVING ->
                # ACTIVE) and re-subscribe normally.
                if [
                    n
                    for n in self.active_up_subscribers(shard_id)
                    if n != name
                ]:
                    self._drop_subscription(name, shard_id)
                    continue
                self._commit_sub_state(name, shard_id, SubscriptionState.ACTIVE)
                current = SubscriptionState.ACTIVE
            if current is SubscriptionState.PENDING:
                # Crashed mid-subscribe: the metadata transfer may never
                # have happened, so backfill before going PASSIVE.
                self._backfill_shard_metadata(node, shard_id)
            else:
                self._commit_sub_state(name, shard_id, SubscriptionState.PENDING)
            self._commit_sub_state(name, shard_id, SubscriptionState.PASSIVE)
            reports[shard_id] = (
                self._warm_cache_from_peer(node, shard_id) if warm_cache else None
            )
            self._commit_sub_state(name, shard_id, SubscriptionState.ACTIVE)
        return reports

    def rebalance_subscriptions(self, warm_cache: bool = True) -> RebalanceReport:
        """One pass of the subscription rebalancer (section 6.4): promote
        or subscribe spare nodes until every shard has its configured
        number of up ACTIVE subscribers.  Also run periodically by
        :class:`~repro.cluster.services.ServiceScheduler`."""
        return SubscriptionRebalancer(self, warm_cache=warm_cache).run()

    # -- elasticity -----------------------------------------------------------------------------------

    def add_node(
        self,
        name: str,
        shards: Optional[Sequence[int]] = None,
        warm_cache: bool = True,
        cache_bytes: Optional[int] = None,
        subcluster: Optional[str] = None,
    ) -> Node:
        """Add a node and subscribe it to ``shards`` (default: balanced).

        "Nodes can easily be added to the system by adjusting the mapping
        ... no expensive redistribution mechanism over all records is
        required" (section 6.4)."""
        if name in self.nodes:
            raise ClusterError(f"node {name} already exists")
        node = Node(
            name,
            cache_bytes=cache_bytes or next(iter(self.nodes.values())).cache_bytes,
            execution_slots=next(iter(self.nodes.values())).execution_slots,
            subcluster=subcluster,
            rng=random.Random(self.rng.getrandbits(64)),
        )
        # Catch the new node up on the commit stream; it subscribes to
        # nothing yet, so shard-scoped metadata is filtered out.  After a
        # revive or truncation the retained history no longer reaches back
        # to version 1, so replaying from an empty catalog is impossible —
        # seed the catalog from a peer instead (same path recovery uses
        # when a node's gap outlives the history).
        node.catalog.subscribed_shards = set()
        history = self.coordinator.log_history
        if history and history[0].version == 1:
            for record in history:
                node.catalog.apply_commit(record, persist=False)
        elif self.version:
            # Empty-but-truncated history (fresh revive) lands here too:
            # the cluster is at base_version with nothing to replay.
            self._full_metadata_rebuild(node)
        self.nodes[name] = node
        self._attach_depot_sink(node)
        if subcluster:
            self.subclusters.setdefault(subcluster, set()).add(name)
        if shards is None:
            shards = self._balanced_shards_for_new_node()
        for shard_id in shards:
            self.subscribe(name, shard_id, warm_cache=warm_cache)
        self.subscribe(name, REPLICA_SHARD_ID, warm_cache=False)
        return node

    def _balanced_shards_for_new_node(self) -> List[int]:
        """Give the new node the shards with the fewest subscribers."""
        counts = {
            shard: len(self.active_up_subscribers(shard))
            for shard in self.shard_map.shard_ids()
        }
        target = max(1, self.shard_map.count * self.subscribers_per_shard // (len(self.nodes)))
        return sorted(counts, key=lambda s: (counts[s], s))[:target]

    def remove_node(self, name: str) -> None:
        """Gracefully remove a node: unsubscribe everywhere, then drop it."""
        state = self.any_up_node().catalog.state
        shards = sorted(
            shard for (n, shard), _ in state.subscriptions.items() if n == name
        )
        for shard_id in shards:
            self.unsubscribe(name, shard_id)
        self.nodes.pop(name)
        for members in self.subclusters.values():
            members.discard(name)

    # -- subclusters ------------------------------------------------------------------------------------

    def define_subcluster(self, name: str, node_names: Sequence[str]) -> None:
        """Designate a subcluster and rebalance subscriptions so every
        shard has a subscriber inside it (section 4.3)."""
        members = set(node_names)
        unknown = members - set(self.nodes)
        if unknown:
            raise ClusterError(f"unknown nodes {sorted(unknown)}")
        self.subclusters[name] = members
        for node_name in members:
            self.nodes[node_name].subcluster = name
        for shard_id in self.shard_map.shard_ids():
            inside = set(self.active_up_subscribers(shard_id)) & members
            if inside:
                continue
            # Subscribe the member with the fewest subscriptions.
            state = self.any_up_node().catalog.state
            load = {
                m: sum(1 for (n, _s), _ in state.subscriptions.items() if n == m)
                for m in members
            }
            chosen = min(sorted(members), key=lambda m: load[m])
            self.subscribe(chosen, shard_id)

    # -- catalog sync / truncation / cluster_info (revive support) ----------------------------------------

    def shared_meta_store(self, node_name: str, incarnation: Optional[str] = None) -> LogStore:
        incarnation = incarnation or self.incarnation
        return LogStore(
            RetryingFilesystem(
                PrefixView(self.shared, f"meta_{incarnation}_{node_name}_")
            )
        )

    def sync_catalogs(self, include_checkpoint: bool = True) -> Dict[str, Tuple[int, int]]:
        """Upload each up node's logs/checkpoints; returns sync intervals."""
        intervals = {}
        for node in self.up_nodes():
            store = self.shared_meta_store(node.name)
            intervals[node.name] = node.catalog.sync_to(
                store, include_checkpoint=include_checkpoint
            )
        return intervals

    def compute_truncation_version(self) -> int:
        """Consensus truncation version (section 3.5, Figure 5): the
        highest version every shard can be revived to from some
        subscriber's uploaded metadata."""
        from repro.catalog.catalog import revivable_interval

        state = self.any_up_node().catalog.state
        intervals: Dict[str, Tuple[int, int]] = {}
        for name in self.nodes:
            intervals[name] = revivable_interval(self.shared_meta_store(name))
        candidates = sorted({high for (_low, high) in intervals.values()}, reverse=True)
        shard_subscribers: Dict[int, List[str]] = {}
        for (node, shard), st in state.subscriptions.items():
            if st == SubscriptionState.ACTIVE.value:
                shard_subscribers.setdefault(shard, []).append(node)
        for candidate in candidates:
            ok = True
            for shard_id in self.shard_map.all_shard_ids():
                subs = shard_subscribers.get(shard_id, [])
                if not any(
                    intervals[n][0] <= candidate <= intervals[n][1]
                    for n in subs
                    if n in intervals
                ):
                    ok = False
                    break
            if ok:
                self.last_truncation_version = candidate
                # Protect the reconstruction material from log pruning.
                for node in self.nodes.values():
                    node.catalog.truncation_floor = candidate
                return candidate
        return 0

    def write_cluster_info(self, lease_seconds: float = 300.0) -> str:
        """Persist cluster_info.json (sequenced names; S3 objects are
        immutable in this simulation, so each write gets a fresh name and
        readers take the newest — the commit-point semantics of section
        3.5 are preserved because the *latest* file wins)."""
        truncation = self.compute_truncation_version()
        doc = {
            "truncation_version": truncation,
            "incarnation": self.incarnation,
            "timestamp": self.clock.now,
            "lease_expiry": self.clock.now + lease_seconds,
            "nodes": sorted(self.nodes),
            "shard_count": self.shard_map.count,
            "subscribers_per_shard": self.subscribers_per_shard,
        }
        existing = retrying(
            lambda: self.shared.list("cluster_info_"), self.shared.metrics
        )
        next_seq = 1
        if existing:
            last = existing[-1][len("cluster_info_"):].split(".")[0]
            next_seq = int(last) + 1
        name = f"cluster_info_{next_seq:012d}.json"
        retrying(
            lambda: self.shared.write(name, json.dumps(doc).encode("utf-8")),
            self.shared.metrics,
        )
        return name

    def refresh_from_shared(self) -> int:
        """Sharing-cluster catch-up: apply the primary's newly uploaded
        commits from shared storage.  Returns commits applied.

        The sharing cluster lags the primary by at most the primary's
        catalog-sync interval — the same freshness bound a revive gets.
        """
        if not self.read_only or self._source_incarnation is None:
            raise ClusterError("refresh_from_shared is for read-only sharing clusters")
        applied = 0
        for name, node in self.nodes.items():
            store = self.shared_meta_store(name, incarnation=self._source_incarnation)
            for version in store.log_versions():
                if version == node.catalog.state.version + 1:
                    node.catalog.apply_commit(store.read_record(version), persist=False)
                    applied += 1
        # Keep the coordinator's version in step for session bookkeeping.
        self.coordinator.base_version = max(
            node.catalog.state.version for node in self.nodes.values()
        )
        self._refresh_shard_filters()
        return applied

    def graceful_shutdown(self) -> None:
        """Upload any remaining logs so shared storage has a complete
        record, then stop (section 3.5)."""
        self.sync_catalogs(include_checkpoint=True)
        self.write_cluster_info(lease_seconds=0.0)
        for node in self.up_nodes():
            node.state = NodeState.DOWN
        self.shut_down = True

"""A database node: local disk, catalog, cache, and storage access.

Nodes are in-process objects; their "local disk" is a
:class:`MemoryFilesystem` by default (a :class:`LocalFilesystem` for tests
that want real files).  Each node carries:

* a :class:`Catalog` filtered to its subscribed shards,
* a :class:`FileCache` (Eon) over its local disk,
* a :class:`SidFactory` whose 120-bit instance id is regenerated whenever
  the node process (re)starts — the property SID uniqueness rests on,
* execution-slot and rack/subcluster attributes used by session layout and
  the throughput simulations.
"""

from __future__ import annotations

import enum
import random
from typing import Optional, Set, Tuple

from repro.cache.disk_cache import FileCache, ObjectInfo, ShapingPolicy
from repro.catalog.catalog import Catalog
from repro.common.oid import SidFactory
from repro.errors import NodeDown, ObjectNotFound
from repro.shared_storage.api import Filesystem, retrying
from repro.shared_storage.posix import MemoryFilesystem


class NodeState(enum.Enum):
    UP = "UP"
    DOWN = "DOWN"


class Node:
    """One Vertica process."""

    def __init__(
        self,
        name: str,
        cache_bytes: int = 256 << 20,
        execution_slots: int = 4,
        subcluster: Optional[str] = None,
        rack: Optional[str] = None,
        local_fs: Optional[Filesystem] = None,
        rng: Optional[random.Random] = None,
        subscribed_shards: Optional[Set[int]] = None,
    ):
        self.name = name
        self.local_fs = local_fs or MemoryFilesystem()
        self.catalog = Catalog(self.local_fs, subscribed_shards=subscribed_shards)
        self.cache = FileCache(self.local_fs, cache_bytes)
        self.cache_bytes = cache_bytes
        self._rng = rng or random.Random()
        self.sid_factory = SidFactory(self._rng)
        self.state = NodeState.UP
        self.execution_slots = execution_slots
        self.subcluster = subcluster
        self.rack = rack
        #: Count of storage fetches served from cache / shared storage.
        self.cache_reads = 0
        self.shared_reads = 0

    # -- lifecycle -------------------------------------------------------------

    @property
    def is_up(self) -> bool:
        return self.state == NodeState.UP

    def ensure_up(self) -> None:
        if not self.is_up:
            raise NodeDown(f"node {self.name} is down")

    def go_down(self, lose_local_disk: bool = False) -> None:
        """Crash the node.  ``lose_local_disk`` models instance loss (the
        EC2 machine is gone) versus process death (disk survives)."""
        self.state = NodeState.DOWN
        if lose_local_disk:
            self.local_fs = MemoryFilesystem()
            self.catalog = Catalog(
                self.local_fs, subscribed_shards=self.catalog.subscribed_shards
            )
            # A fresh policy *instance*, not the dead incarnation's object:
            # any per-entry state the policy carries (recency, frequency,
            # pin counts) describes files that no longer exist on the
            # replacement disk.  The event sink belongs to the node's slot
            # in the cluster, not the dead incarnation, so it carries over.
            sink = self.cache.event_sink
            self.cache = FileCache(
                self.local_fs, self.cache_bytes, type(self.cache.policy)()
            )
            self.cache.event_sink = sink

    def restart(self) -> None:
        """Bring the process back up: new instance id, catalog recovered
        from local disk (section 3.5: "Process termination results in
        reading the local transaction logs and no loss of transactions")."""
        self.state = NodeState.UP
        self.sid_factory = SidFactory(self._rng)
        self.catalog.recover()

    # -- storage access ----------------------------------------------------------

    def fetch_storage(
        self,
        name: str,
        shared: Filesystem,
        info: Optional[ObjectInfo] = None,
        use_cache: bool = True,
    ) -> Tuple[bytes, bool, float]:
        """Read a storage file through the cache.

        Returns ``(data, from_cache, io_seconds)``.  Misses fetch from
        shared storage (with the mandatory retry loop) and populate the
        cache write-through.
        """
        self.ensure_up()
        data = self.cache.get(name, use_cache=use_cache)
        if data is not None:
            self.cache_reads += 1
            return data, True, self.local_fs.estimate_read_seconds(len(data))
        backoff_before = shared.metrics.retry_backoff_seconds
        data = retrying(lambda: shared.read(name), shared.metrics)
        self.shared_reads += 1
        self.cache.note_miss_bytes(len(data))
        # Retry backoff is query time, not just a metrics line: fold it
        # into this fetch's I/O seconds so a throttled scan reports higher
        # latency than an unthrottled one.
        io_seconds = shared.estimate_read_seconds(len(data)) + (
            shared.metrics.retry_backoff_seconds - backoff_before
        )
        if use_cache:
            self.cache.put(name, data, info=info)
        return data, False, io_seconds

    def write_storage(
        self,
        name: str,
        data: bytes,
        shared: Filesystem,
        info: Optional[ObjectInfo] = None,
        use_cache: bool = True,
    ) -> float:
        """Write a new storage file: cache write-through, then upload to
        shared storage *before commit* (Figure 8).  Returns io seconds."""
        self.ensure_up()
        if use_cache:
            self.cache.put(name, data, info=info)
        backoff_before = shared.metrics.retry_backoff_seconds
        retrying(lambda: shared.write(name, data), shared.metrics)
        # As in fetch_storage: throttled uploads cost simulated time.
        return shared.estimate_write_seconds(len(data)) + (
            shared.metrics.retry_backoff_seconds - backoff_before
        )

    def __repr__(self) -> str:
        return f"Node({self.name}, {self.state.value})"

"""File deletion and leaked-file cleanup (section 6.5).

Files on shared storage are never modified, so the only hard problem is
when to *delete* them.  A file whose catalog reference count reached zero
(its ``drop_container``/``drop_delete_vector`` committed) may still be
needed because

1. a query on some node still reads a snapshot that references it — nodes
   gossip the minimum catalog version of their running queries, and the
   file is safe to delete only once the cluster-wide minimum passes the
   drop version; and
2. the commit that dropped it may not have been persisted to shared
   storage yet — a total local-disk loss could revive to a version where
   the file is live again, so deletion also waits for the truncation
   version to pass the drop version.

Leaked files (created by a node that crashed before telling anyone) are
collected by the explicit :meth:`cleanup_leaked_files` sweep: enumerate
shared storage, keep everything any node references or that carries a
running node's instance-id prefix, delete the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple


@dataclass
class ReapStats:
    deleted: int = 0
    retained_for_queries: int = 0
    retained_for_durability: int = 0
    leaked_deleted: int = 0


class FileReaper:
    def __init__(self, cluster) -> None:
        self._cluster = cluster
        #: (sid, version at which its reference count hit zero)
        self._pending: List[Tuple[str, int]] = []
        self.stats = ReapStats()

    def note_drop(self, sid: str, drop_version: int) -> None:
        self._pending.append((sid, drop_version))

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def pending_sids(self) -> Set[str]:
        """Dropped-but-not-yet-deleted storage names (invariant accessor)."""
        return {sid for sid, _v in self._pending}

    def cluster_min_query_version(self) -> int:
        """The gossiped minimum catalog version of running queries.

        Each node reports the oldest version its pinned snapshots
        reference (monotonically increasing per node); the cluster minimum
        bounds which dropped files queries could still touch.
        """
        cluster = self._cluster
        versions = [
            node.catalog.min_pinned_version() for node in cluster.up_nodes()
        ]
        return min(versions) if versions else cluster.version

    def poll(self) -> ReapStats:
        """Delete every pending file that is safe to delete now."""
        cluster = self._cluster
        min_query = self.cluster_min_query_version()
        truncation = cluster.last_truncation_version
        # Storage can be re-referenced after a drop (partition moves,
        # table copies); a currently-referenced file is never deleted.
        referenced: Set[str] = set()
        for node in cluster.up_nodes():
            referenced |= node.catalog.state.storage_sids()
        stats = ReapStats()
        remaining: List[Tuple[str, int]] = []
        for sid, drop_version in self._pending:
            if sid in referenced:
                continue  # re-referenced: no longer pending at all
            # Snapshots strictly older than the drop version still
            # reference the file; one at the drop version does not.
            if drop_version > min_query:
                stats.retained_for_queries += 1
                remaining.append((sid, drop_version))
                continue
            if drop_version > truncation:
                stats.retained_for_durability += 1
                remaining.append((sid, drop_version))
                continue
            cluster.shared_data.delete(sid)
            stats.deleted += 1
        self._pending = remaining
        self.stats.deleted += stats.deleted
        obs = getattr(cluster, "obs", None)
        if obs is not None and obs.enabled:
            obs.tracer.record(
                "reaper_sweep",
                deleted=stats.deleted,
                retained_for_queries=stats.retained_for_queries,
                retained_for_durability=stats.retained_for_durability,
                pending=len(remaining),
            )
            obs.metrics.counter("reaper.sweeps").inc()
            obs.metrics.counter("reaper.files_deleted").inc(stats.deleted)
            obs.metrics.gauge("reaper.pending_files").set(len(remaining))
        return stats

    def cleanup_leaked_files(self) -> int:
        """The global enumeration fallback.  Expensive; run manually after
        crashes."""
        cluster = self._cluster
        referenced: Set[str] = set()
        for node in cluster.up_nodes():
            referenced |= node.catalog.state.storage_sids()
        referenced |= {sid for sid, _v in self._pending}
        running_prefixes = cluster.running_instance_prefixes()
        deleted = 0
        for name in cluster.shared_data.list():
            if name in referenced:
                continue
            if any(name.startswith(p) for p in running_prefixes):
                continue  # possibly mid-write by a live node
            cluster.shared_data.delete(name)
            deleted += 1
        self.stats.leaked_deleted += deleted
        return deleted

"""Background services: the periodic maintenance loops of a live cluster.

The paper describes several services that "wake up" on intervals: the
catalog sync ("each node ... independently uploads them to shared storage
on a regular, configurable interval", §3.5), the truncation-version /
cluster_info writer (§3.5), mergeout (§6.2), and file reaping (§6.5).

:class:`ServiceScheduler` drives them from the simulated clock, so long
DES runs (like the Figure-12 timeline) execute maintenance at realistic
cadence, and tests can single-step with :meth:`tick`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.clock import Timeout
from repro.errors import ReproError
from repro.obs.tracing import NULL_TRACER
from repro.tuple_mover import MergeoutCoordinatorService


@dataclass
class ServiceIntervals:
    """Seconds between runs of each service (None disables it)."""

    catalog_sync: Optional[float] = 60.0
    cluster_info: Optional[float] = 300.0
    mergeout: Optional[float] = 120.0
    reaper: Optional[float] = 300.0


@dataclass
class ServiceStats:
    sync_runs: int = 0
    cluster_info_writes: int = 0
    mergeout_jobs: int = 0
    files_reaped: int = 0
    errors: int = 0


class ServiceScheduler:
    """Periodic maintenance driver for an Eon cluster."""

    def __init__(self, cluster, intervals: Optional[ServiceIntervals] = None):
        self.cluster = cluster
        self.intervals = intervals or ServiceIntervals()
        self.mergeout_service = MergeoutCoordinatorService(cluster)
        self.stats = ServiceStats()
        self._running = False

    # -- single-step (tests and synchronous callers) -----------------------------

    def tick(self) -> ServiceStats:
        """Run every enabled service once, immediately."""
        self.run_catalog_sync()
        self.run_cluster_info()
        self.run_mergeout()
        self.run_reaper()
        return self.stats

    def _tracer(self):
        obs = getattr(self.cluster, "obs", None)
        return obs.tracer if obs is not None else NULL_TRACER

    def run_catalog_sync(self) -> None:
        try:
            with self._tracer().span("service.catalog_sync"):
                self.cluster.sync_catalogs(include_checkpoint=True)
            self.stats.sync_runs += 1
        except ReproError:
            self.stats.errors += 1

    def run_cluster_info(self) -> None:
        try:
            with self._tracer().span("service.cluster_info"):
                self.cluster.write_cluster_info()
            self.stats.cluster_info_writes += 1
        except ReproError:
            self.stats.errors += 1

    def run_mergeout(self) -> None:
        try:
            with self._tracer().span("service.mergeout") as span:
                report = self.mergeout_service.run_all(max_jobs_per_shard=4)
                span.annotate(jobs=report.jobs_run)
            self.stats.mergeout_jobs += report.jobs_run
        except ReproError:
            self.stats.errors += 1

    def run_reaper(self) -> None:
        try:
            with self._tracer().span("service.reaper") as span:
                reaped = self.cluster.reaper.poll()
                span.annotate(deleted=reaped.deleted)
            self.stats.files_reaped += reaped.deleted
        except ReproError:
            self.stats.errors += 1

    # -- clock-driven operation --------------------------------------------------

    def start(self, duration: Optional[float] = None) -> None:
        """Spawn one clock process per enabled service.

        Each service sleeps its interval then runs; a service that raises
        counts an error and keeps going (a failed sync must not kill the
        sync loop).  With ``duration``, services stop scheduling after
        that point; the caller still owns ``clock.run()``.
        """
        clock = self.cluster.clock
        self._running = True

        def loop(interval: float, action) -> object:
            while self._running:
                yield Timeout(interval)
                if duration is not None and clock.now > duration:
                    return None
                if not self._running:
                    return None
                action()
            return None

        pairs = [
            (self.intervals.catalog_sync, self.run_catalog_sync),
            (self.intervals.cluster_info, self.run_cluster_info),
            (self.intervals.mergeout, self.run_mergeout),
            (self.intervals.reaper, self.run_reaper),
        ]
        for interval, action in pairs:
            if interval is not None:
                clock.spawn(loop(interval, action))

    def stop(self) -> None:
        self._running = False

"""Background services: the periodic maintenance loops of a live cluster.

The paper describes several services that "wake up" on intervals: the
catalog sync ("each node ... independently uploads them to shared storage
on a regular, configurable interval", §3.5), the truncation-version /
cluster_info writer (§3.5), mergeout (§6.2), and file reaping (§6.5).
PR 4 adds the rebalance process (§6.4) as a fifth service: it detects
uncovered and under-subscribed shards and promotes or subscribes spare
nodes automatically.

:class:`ServiceScheduler` drives them from the simulated clock, so long
DES runs (like the Figure-12 timeline) execute maintenance at realistic
cadence, and tests can single-step with :meth:`tick`.

Failure handling: a failing service must not kill its loop, but it must
not be invisible either.  Every swallowed :class:`ReproError` is recorded
per service (``error_counts`` / ``last_errors``), emitted as a
``services.errors{service=...}`` counter, and surfaced through the
``v_monitor.services`` system table.  During a shared-storage outage the
services *pause* (``skipped_outage``) instead of burning error counters —
a declared outage is a cluster state, not a service failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.clock import Timeout
from repro.errors import ReproError
from repro.obs.tracing import NULL_TRACER
from repro.recovery import SubscriptionRebalancer
from repro.tuple_mover import MergeoutCoordinatorService


@dataclass
class ServiceIntervals:
    """Seconds between runs of each service (None disables it)."""

    catalog_sync: Optional[float] = 60.0
    cluster_info: Optional[float] = 300.0
    mergeout: Optional[float] = 120.0
    reaper: Optional[float] = 300.0
    rebalance: Optional[float] = 60.0
    #: The elastic autoscaler (repro.autoscale).  Disabled by default —
    #: it only runs when an Autoscaler has been attached via
    #: :meth:`ServiceScheduler.attach_autoscaler`.
    autoscale: Optional[float] = None


@dataclass
class ServiceStats:
    sync_runs: int = 0
    cluster_info_writes: int = 0
    mergeout_jobs: int = 0
    files_reaped: int = 0
    rebalance_runs: int = 0
    rebalance_promotions: int = 0
    rebalance_subscriptions: int = 0
    autoscale_ticks: int = 0
    autoscale_actions: int = 0
    errors: int = 0
    #: Service runs skipped because the cluster was degraded (S3 outage).
    skipped_outage: int = 0


class ServiceScheduler:
    """Periodic maintenance driver for an Eon cluster."""

    def __init__(self, cluster, intervals: Optional[ServiceIntervals] = None):
        self.cluster = cluster
        self.intervals = intervals or ServiceIntervals()
        self.mergeout_service = MergeoutCoordinatorService(cluster)
        self.rebalancer = SubscriptionRebalancer(cluster)
        #: Attached via :meth:`attach_autoscaler`; None means disabled.
        self.autoscaler = None
        self.stats = ServiceStats()
        #: Per-service visibility for permanently failing services: total
        #: runs, swallowed-error counts, and the text of the last error.
        self.run_counts: Dict[str, int] = {}
        self.error_counts: Dict[str, int] = {}
        self.last_errors: Dict[str, str] = {}
        self._running = False
        # Registered so v_monitor.services can find the stats.
        cluster.service_scheduler = self

    # -- single-step (tests and synchronous callers) -----------------------------

    def tick(self) -> ServiceStats:
        """Run every enabled service once, immediately."""
        self.run_catalog_sync()
        self.run_cluster_info()
        self.run_mergeout()
        self.run_reaper()
        self.run_rebalancer()
        self.run_autoscale()
        return self.stats

    def attach_autoscaler(self, autoscaler, interval: Optional[float] = None) -> None:
        """Register an :class:`repro.autoscale.Autoscaler` as the sixth
        service.  ``interval`` (seconds) enables its clock loop; omit it
        to drive the scaler only via :meth:`tick` / :meth:`run_autoscale`."""
        self.autoscaler = autoscaler
        if interval is not None:
            self.intervals.autoscale = interval

    def _tracer(self):
        obs = getattr(self.cluster, "obs", None)
        return obs.tracer if obs is not None else NULL_TRACER

    def _paused(self, service: str) -> bool:
        """True while the cluster is degraded: services pause rather than
        fail (their S3 requests would all be rejected anyway)."""
        refresh = getattr(self.cluster, "refresh_degraded", None)
        if refresh is None or not refresh():
            return False
        self.stats.skipped_outage += 1
        if getattr(self.cluster, "obs", None) is not None and self.cluster.obs.enabled:
            self.cluster.obs.metrics.counter(
                "services.skipped_outage", service=service
            ).inc()
        self._dc_record(service, "skipped_outage")
        return True

    def _dc_record(self, service: str, outcome: str, detail: str = "") -> None:
        """One row into ``dc_service_runs`` (no-op when obs is disabled)."""
        obs = getattr(self.cluster, "obs", None)
        if obs is not None and obs.enabled:
            obs.dc.record("dc_service_runs", "", (service, outcome, detail))

    def _note_error(self, service: str, error: ReproError) -> None:
        self.stats.errors += 1
        self.error_counts[service] = self.error_counts.get(service, 0) + 1
        self.last_errors[service] = f"{type(error).__name__}: {error}"
        obs = getattr(self.cluster, "obs", None)
        if obs is not None and obs.enabled:
            obs.metrics.counter("services.errors", service=service).inc()
        self._dc_record(service, "error", f"{type(error).__name__}: {error}")

    def _note_run(self, service: str) -> None:
        self.run_counts[service] = self.run_counts.get(service, 0) + 1
        self._dc_record(service, "run")

    def run_catalog_sync(self) -> None:
        if self._paused("catalog_sync"):
            return
        self._note_run("catalog_sync")
        try:
            with self._tracer().span("service.catalog_sync"):
                self.cluster.sync_catalogs(include_checkpoint=True)
            self.stats.sync_runs += 1
        except ReproError as exc:
            self._note_error("catalog_sync", exc)

    def run_cluster_info(self) -> None:
        if self._paused("cluster_info"):
            return
        self._note_run("cluster_info")
        try:
            with self._tracer().span("service.cluster_info"):
                self.cluster.write_cluster_info()
            self.stats.cluster_info_writes += 1
        except ReproError as exc:
            self._note_error("cluster_info", exc)

    def run_mergeout(self) -> None:
        if self._paused("mergeout"):
            return
        self._note_run("mergeout")
        try:
            with self._tracer().span("service.mergeout") as span:
                report = self.mergeout_service.run_all(max_jobs_per_shard=4)
                span.annotate(jobs=report.jobs_run)
            self.stats.mergeout_jobs += report.jobs_run
        except ReproError as exc:
            self._note_error("mergeout", exc)

    def run_reaper(self) -> None:
        if self._paused("reaper"):
            return
        self._note_run("reaper")
        try:
            with self._tracer().span("service.reaper") as span:
                reaped = self.cluster.reaper.poll()
                span.annotate(deleted=reaped.deleted)
            self.stats.files_reaped += reaped.deleted
        except ReproError as exc:
            self._note_error("reaper", exc)

    def run_rebalancer(self) -> None:
        """The rebalance process (§6.4) as a periodic service: restore
        shard coverage and fault tolerance after node failures without
        waiting for an operator."""
        if self._paused("rebalance"):
            return
        self._note_run("rebalance")
        try:
            with self._tracer().span("service.rebalance") as span:
                report = self.rebalancer.run()
                span.annotate(
                    promoted=len(report.promoted),
                    subscribed=len(report.subscribed),
                )
            self.stats.rebalance_runs += 1
            self.stats.rebalance_promotions += len(report.promoted)
            self.stats.rebalance_subscriptions += len(report.subscribed)
        except ReproError as exc:
            self._note_error("rebalance", exc)

    def run_autoscale(self) -> None:
        """One autoscaler control-loop pass: repair interrupted
        transitions, sample telemetry, decide, actuate.  A no-op until an
        autoscaler is attached."""
        if self.autoscaler is None:
            return
        if self._paused("autoscale"):
            return
        self._note_run("autoscale")
        try:
            with self._tracer().span("service.autoscale") as span:
                decision = self.autoscaler.run()
                span.annotate(action=decision.action, reason=decision.reason)
            self.stats.autoscale_ticks += 1
            if decision.action != "hold":
                self.stats.autoscale_actions += 1
        except ReproError as exc:
            self._note_error("autoscale", exc)

    # -- clock-driven operation --------------------------------------------------

    def start(self, duration: Optional[float] = None) -> None:
        """Spawn one clock process per enabled service.

        Each service sleeps its interval then runs; a service that raises
        counts an error and keeps going (a failed sync must not kill the
        sync loop).  With ``duration``, services stop scheduling after
        that point; the caller still owns ``clock.run()``.
        """
        clock = self.cluster.clock
        self._running = True

        def loop(interval: float, action) -> object:
            while self._running:
                yield Timeout(interval)
                if duration is not None and clock.now > duration:
                    return None
                if not self._running:
                    return None
                action()
            return None

        pairs = [
            (self.intervals.catalog_sync, self.run_catalog_sync),
            (self.intervals.cluster_info, self.run_cluster_info),
            (self.intervals.mergeout, self.run_mergeout),
            (self.intervals.reaper, self.run_reaper),
            (self.intervals.rebalance, self.run_rebalancer),
            (self.intervals.autoscale, self.run_autoscale),
        ]
        for interval, action in pairs:
            if interval is not None:
                clock.spawn(loop(interval, action))

    def stop(self) -> None:
        self._running = False

"""Revive: starting a cluster from shared storage alone (section 3.5).

The running cluster periodically uploads transaction logs and checkpoints
(per node) and a ``cluster_info.json`` carrying the consensus truncation
version, the incarnation id, and a lease.  Revive:

1. reads the latest cluster_info; aborts if the lease has not expired
   (another cluster is probably still running against this storage);
2. commissions nodes with empty local storage and has each download its
   catalog from the old incarnation's metadata area;
3. truncates every catalog to the truncation version and writes a fresh
   checkpoint;
4. adopts a *new* incarnation id, so post-revive metadata uploads land in
   a distinct namespace even though version numbers repeat;
5. uploads a new cluster_info.json — the commit point of the revive.

Our simulated S3 enforces object immutability, so cluster_info files use
monotonically sequenced names and readers take the newest; the paper's
"write of the cluster_info.json is the commit point" semantics carry over
because the newest file wins.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.catalog.mvcc import CatalogState
from repro.cluster.eon import EonCluster
from repro.cluster.transactions import CommitCoordinator
from repro.common.clock import SimClock
from repro.errors import ReviveError
from repro.shared_storage.api import Filesystem

CLUSTER_INFO_PREFIX = "cluster_info_"


def read_latest_cluster_info(shared: Filesystem) -> Optional[dict]:
    from repro.shared_storage.api import retrying

    names = retrying(lambda: shared.list(CLUSTER_INFO_PREFIX), shared.metrics)
    if not names:
        return None
    return json.loads(retrying(lambda: shared.read(names[-1]), shared.metrics))


def revive(
    shared_storage: Filesystem,
    clock: Optional[SimClock] = None,
    force: bool = False,
    seed: int = 1,
    cache_bytes: int = 256 << 20,
    read_only: bool = False,
    observability=None,
) -> EonCluster:
    """Start a cluster from shared storage; returns the revived cluster.

    ``read_only=True`` builds a *sharing* cluster (section 10: "the idea of
    two or more databases sharing the same metadata and data files is
    practical and compelling"): it attaches to the primary's uploaded
    metadata without taking over the lease, serves queries against its own
    compute and caches, refuses writes, and can catch up on the primary's
    new commits with :meth:`EonCluster.refresh_from_shared`.
    """
    clock = clock or SimClock()
    metrics_before = shared_storage.metrics.sim_seconds
    info = read_latest_cluster_info(shared_storage)
    if info is None:
        raise ReviveError("no cluster_info.json found on shared storage")
    if not read_only and not force and clock.now < info["lease_expiry"]:
        raise ReviveError(
            f"lease active until {info['lease_expiry']} (now {clock.now}); "
            "another cluster may be running — pass force=True to override"
        )
    truncation = info["truncation_version"]
    old_incarnation = info["incarnation"]
    node_names: List[str] = info["nodes"]

    cluster = EonCluster(
        node_names,
        info["shard_count"],
        shared_storage=shared_storage,
        subscribers_per_shard=info.get("subscribers_per_shard", 2),
        cache_bytes=cache_bytes,
        seed=seed,
        clock=clock,
        observability=observability,
        _bootstrap=False,
    )
    cluster.coordinator = CommitCoordinator(cluster, base_version=truncation)
    cluster.last_truncation_version = truncation
    cluster.read_only = read_only
    if read_only:
        cluster._source_incarnation = old_incarnation

    for name in node_names:
        node = cluster.nodes[name]
        remote = cluster.shared_meta_store(name, incarnation=old_incarnation)
        # "All nodes individually download their catalog from shared
        # storage": copy the uploaded checkpoints and logs to local disk,
        # then run normal startup recovery and truncate.
        uploaded = remote.fs.list()
        if not uploaded:
            raise ReviveError(
                f"node {name} has no uploaded metadata under incarnation "
                f"{old_incarnation}; cannot revive"
            )
        if not remote.checkpoint_versions():
            # Logs alone cannot seed recovery: replay starts from a
            # checkpoint, so a missing/deleted checkpoint object is fatal
            # for this node's reconstruction.
            raise ReviveError(
                f"node {name} has transaction logs but no checkpoint "
                "object on shared storage; cannot revive"
            )
        for obj in uploaded:
            node.local_fs.write(obj, remote.fs.read(obj))
        node.catalog.subscribed_shards = None  # learn subscriptions first
        node.catalog.recover()
        node.catalog.truncate_to(truncation)
        _trim_to_subscriptions(node)
        # The trim is not represented in the log; checkpoint so a later
        # restart recovers from the post-trim state.
        node.catalog.write_checkpoint()

    # Cluster-formation invariants: every shard must be covered by a
    # subscription that was ACTIVE when the nodes went down (section 3.4).
    cluster._refresh_shard_filters()
    state = cluster.any_up_node().catalog.state
    if state.version != truncation:
        raise ReviveError(
            f"catalog reconstruction reached {state.version}, "
            f"expected {truncation}"
        )
    cluster.check_viability()

    if cluster.obs.enabled:
        cluster.obs.tracer.record(
            "revive",
            duration=shared_storage.metrics.sim_seconds - metrics_before,
            incarnation_from=old_incarnation,
            truncation_version=truncation,
            nodes=len(node_names),
            read_only=read_only,
        )
        cluster.obs.metrics.counter("revive.count").inc()

    if read_only:
        # A sharing cluster never writes to the primary's metadata or
        # lease; it is a pure consumer of the shared files.
        return cluster

    # New incarnation; upload its first cluster_info as the commit point.
    cluster.incarnation = f"{cluster.rng.getrandbits(128):032x}"
    cluster.sync_catalogs(include_checkpoint=True)
    cluster.write_cluster_info()
    return cluster


def form_cluster(cluster) -> int:
    """Reconcile divergent node catalogs after a mid-commit crash.

    "Cluster formation reuses the revive mechanism when the cluster
    crashes mid commit and some nodes restart with different catalog
    versions.  The cluster former notices the discrepancy based on invite
    messages and instructs the cluster to perform a truncation operation
    to the best catalog version.  The cluster follows the same mechanism
    as revive, moving to a new incarnation id." (section 3.5)

    Returns the agreed version.  Nodes ahead of it truncate; nodes behind
    are repaired through the normal recovery path afterwards.
    """
    up = [n for n in cluster.nodes.values() if n.is_up]
    if len(up) * 2 <= len(cluster.nodes):
        raise ReviveError("cannot form a cluster without quorum")
    versions = sorted({n.catalog.state.version for n in up}, reverse=True)
    best: Optional[int] = None
    for candidate in versions:
        participants = {n.name for n in up if n.catalog.state.version >= candidate}
        # Every shard needs an ACTIVE-when-down subscriber among the
        # participants at this version.
        reference = next(
            n for n in up if n.catalog.state.version >= candidate
        ).catalog.state
        covered = True
        for shard_id in cluster.shard_map.all_shard_ids():
            subscribers = {
                node
                for (node, shard), state in reference.subscriptions.items()
                if shard == shard_id and state == "ACTIVE"
            }
            if not subscribers & participants:
                covered = False
                break
        if covered:
            best = candidate
            break
    if best is None:
        raise ReviveError(
            "no catalog version is covered by surviving ACTIVE subscriptions"
        )
    # Discard the uncommitted tail everywhere (the paper's truncation).
    for node in up:
        if node.catalog.state.version > best:
            node.catalog.truncate_to(best)
    base = cluster.coordinator.base_version
    cluster.coordinator.log_history = [
        record
        for record in cluster.coordinator.log_history
        if record.version <= best
    ]
    cluster.coordinator.base_version = min(base, best)
    # Nodes behind the agreed version catch up from the retained history
    # so the next commit finds everyone at the same version.
    for node in up:
        while node.catalog.state.version < best:
            missing = [
                record
                for record in cluster.coordinator.log_history
                if record.version == node.catalog.state.version + 1
            ]
            if not missing:
                cluster._full_metadata_rebuild(node)
                break
            node.catalog.apply_commit(missing[0])
    # New incarnation: post-formation commits reuse version numbers the
    # discarded tail held, so their metadata must land in a new namespace.
    cluster.incarnation = f"{cluster.rng.getrandbits(128):032x}"
    cluster._refresh_shard_filters()
    return best


def _trim_to_subscriptions(node) -> None:
    """Drop storage metadata for shards the node does not subscribe to."""
    state = node.catalog.state
    shards = {
        shard for (n, shard), _ in state.subscriptions.items() if n == node.name
    }
    node.catalog.subscribed_shards = shards
    trimmed = state.copy()
    changed = False
    for sid, container in list(trimmed.containers.items()):
        if container.shard_id not in shards:
            del trimmed.containers[sid]
            changed = True
    for sid, dv in list(trimmed.delete_vectors.items()):
        if dv.shard_id not in shards:
            del trimmed.delete_vectors[sid]
            changed = True
    if changed:
        node.catalog.state = trimmed
        node.catalog._recent[trimmed.version] = trimmed

"""Enterprise mode: the shared-nothing baseline (sections 2, 6.1).

Contrasts with Eon everywhere the paper does:

* data lives on node-local disks (modelled as EBS-class volumes — slower
  than instance storage — because Enterprise data must survive instance
  loss, exactly the configuration of the Figure 10 experiment);
* fault tolerance comes from *buddy projections*: each segmented
  projection has a twin whose hash regions map to the next node on the
  logical ring, so when a node is down the optimizer sources the missing
  region from its buddy;
* small loads buffer in the WOS and reach the ROS via moveout;
* a recovering node must *repair*: rebuild its containers from buddies
  with a logical data transfer proportional to its entire data set —
  versus Eon's byte-level cache warm proportional to the working set.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.catalog.catalog import Catalog
from repro.catalog.mvcc import op_add_container, op_create_projection, op_create_table, op_drop_container
from repro.catalog.objects import Projection, Segmentation, Table
from repro.catalog.transaction_log import LogRecord
from repro.cluster.node import Node, NodeState
from repro.common.clock import SimClock
from repro.common.types import ColumnType, SchemaColumn, TableSchema
from repro.engine.cost import CostModel
from repro.engine.executor import Executor, QueryResult, ScanResult, StorageProvider
from repro.engine.pipeline import EngineStats
from repro.engine.expressions import Expr
from repro.engine.planner import plan_query
from repro.engine.pruning import prune_containers
from repro.errors import (
    CatalogError,
    ClusterError,
    NodeDown,
    QuorumLost,
    ShardCoverageLost,
)
from repro.sharding.shard import REPLICA_SHARD_ID, ShardMap
from repro.shared_storage.posix import MemoryFilesystem
from repro.sql.binder import bind_select
from repro.sql.parser import parse
from repro.storage.container import (
    ROSContainer,
    RowSet,
    container_stats,
    read_container,
    write_container,
)
from repro.storage.wos import WOS
from repro.wm.admission import AdmissionController

#: EBS-class volume throughput (bytes/simulated second) for Enterprise
#: node storage; Eon caches sit on faster instance storage.
EBS_READ_BANDWIDTH = 130e6
EBS_WRITE_BANDWIDTH = 110e6


@dataclass
class EnterpriseSession:
    """Region-to-node serving map for one query."""

    region_server: Dict[int, str]  # region -> node serving it
    initiator: str

    def regions_of(self, node: str) -> List[int]:
        return [r for r, n in self.region_server.items() if n == node]


class EnterpriseCluster:
    """Shared-nothing Vertica with buddy projections."""

    def __init__(
        self,
        node_names: Sequence[str],
        execution_slots: int = 4,
        wos_capacity_rows: int = 100_000,
        direct_load_threshold: int = 10_000,
        seed: int = 0,
        clock: Optional[SimClock] = None,
        cost_model: Optional[CostModel] = None,
        batched: bool = False,
        batch_size: int = 1024,
    ):
        if len(node_names) < 1:
            raise ValueError("cluster needs at least one node")
        self.rng = random.Random(seed)
        self.clock = clock or SimClock()
        self.cost_model = cost_model or CostModel()
        #: In Enterprise the "shard map" is the fixed node-region layout.
        self.shard_map = ShardMap(len(node_names))
        self.node_order = list(node_names)
        self.nodes: Dict[str, Node] = {}
        for name in node_names:
            node = Node(
                name,
                cache_bytes=0,
                execution_slots=execution_slots,
                rng=random.Random(self.rng.getrandbits(64)),
            )
            node.local_fs.read_bandwidth = EBS_READ_BANDWIDTH
            node.local_fs.write_bandwidth = EBS_WRITE_BANDWIDTH
            node.wos = WOS(wos_capacity_rows)
            self.nodes[name] = node
        self.catalog = Catalog(MemoryFilesystem())
        self.direct_load_threshold = direct_load_threshold
        #: sid -> owning node (each file owned by exactly one node).
        self.container_owner: Dict[str, str] = {}
        self._version = itertools.count(1)
        self._session_counter = itertools.count()
        self.shut_down = False
        #: Workload manager (repro.wm): Enterprise has no subclusters, so
        #: every node lands in the shared ``general`` pool — and every
        #: query takes a slot on every node, the paper's scaling penalty.
        self.admission = AdmissionController(self)
        #: Default execution mode; per-query kwargs override it.  The
        #: Enterprise provider has no I/O scheduler, so batched mode here
        #: exercises streaming/SIP without pooled lane charging.
        self.batched = batched
        self.batch_size = batch_size
        self.engine_stats = EngineStats()

    # -- membership -------------------------------------------------------------

    def up_nodes(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.is_up]

    def region_of_node(self, name: str) -> int:
        return self.node_order.index(name)

    def buddy_node_of_region(self, region: int) -> str:
        """The ring is rotated by one: region r's buddy copy lives on the
        next node (section 2.2)."""
        return self.node_order[(region + 1) % len(self.node_order)]

    def check_viability(self) -> None:
        up = len(self.up_nodes())
        if up * 2 <= len(self.nodes):
            self.shut_down = True
            raise QuorumLost(f"only {up} of {len(self.nodes)} nodes up")
        for region in range(len(self.node_order)):
            base = self.nodes[self.node_order[region]]
            buddy = self.nodes[self.buddy_node_of_region(region)]
            if not base.is_up and not buddy.is_up:
                self.shut_down = True
                raise ShardCoverageLost(
                    f"region {region}: node and buddy both down (K-safety lost)"
                )

    # -- commits (single global catalog) -------------------------------------------

    def _commit(self, ops: List[dict]) -> int:
        record = LogRecord(version=next(self._version), ops=tuple(ops))
        self.catalog.apply_commit(record, persist=False)
        return record.version

    # -- DDL -----------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[Tuple[str, ColumnType]],
        partition_by: Optional[str] = None,
        create_super: bool = True,
    ) -> int:
        schema = TableSchema([SchemaColumn(n, t) for n, t in columns])
        ops = [op_create_table(Table(name=name, schema=schema, partition_by=partition_by))]
        if create_super:
            super_proj = Projection(
                name=f"{name}_super",
                anchor_table=name,
                columns=tuple(schema.names),
                sort_order=(schema.names[0],),
                segmentation=Segmentation.by_hash(schema.names[0]),
            )
            ops.append(op_create_projection(super_proj))
            ops.append(op_create_projection(super_proj.make_buddy()))
        return self._commit(ops)

    def create_projection(
        self,
        name: str,
        table: str,
        columns: Sequence[str],
        sort_order: Sequence[str],
        segmentation: Segmentation,
    ) -> int:
        state = self.catalog.state
        for existing in state.projections_of(table):
            if state.containers_of(existing.name):
                raise CatalogError(
                    f"cannot add projection to non-empty table {table!r}"
                )
        projection = Projection(
            name=name,
            anchor_table=table,
            columns=tuple(columns),
            sort_order=tuple(sort_order),
            segmentation=segmentation,
        )
        ops = [op_create_projection(projection)]
        if not segmentation.is_replicated:
            ops.append(op_create_projection(projection.make_buddy()))
        return self._commit(ops)

    def drop_projections(self, names: Sequence[str]) -> int:
        """Drop projections (and their buddies) in one commit; refuses to
        drop a table's last non-buddy projection."""
        state = self.catalog.state
        remaining: Dict[str, int] = {}
        to_drop: List[str] = []
        for name in names:
            projection = state.projection(name)
            table = projection.anchor_table
            if table not in remaining:
                remaining[table] = len(
                    [p for p in state.projections_of(table) if not p.is_buddy]
                )
            remaining[table] -= 1
            if remaining[table] < 1:
                raise CatalogError(
                    f"cannot drop {name!r}: it is the last projection of "
                    f"table {table!r}"
                )
            to_drop.append(name)
            for buddy in state.projections_of(table):
                if buddy.is_buddy and buddy.buddy_of == name:
                    to_drop.append(buddy.name)
        from repro.catalog.mvcc import op_drop_projection

        return self._commit([op_drop_projection(n) for n in to_drop])

    def drop_projection(self, name: str) -> int:
        return self.drop_projections([name])

    # -- load ------------------------------------------------------------------------

    def load(self, table_name: str, rows, direct: Optional[bool] = None):
        """COPY: small batches buffer in the WOS, large ones go DIRECT to
        the ROS (section 2.3)."""
        state = self.catalog.state
        table = state.table(table_name)
        if not isinstance(rows, RowSet):
            rows = RowSet.from_rows(table.schema, rows)
        rows = rows.select(table.schema.names)
        if direct is None:
            direct = rows.num_rows >= self.direct_load_threshold
        io_seconds = 0.0
        ops: List[dict] = []
        for projection in state.projections_of(table_name):
            if projection.is_buddy:
                continue
            io_seconds += self._load_projection(projection, rows, direct, ops)
        version = self._commit(ops) if ops else self.catalog.state.version
        # Run moveout opportunistically when the WOS fills up.
        for node in self.up_nodes():
            if node.wos.over_capacity:
                self.moveout(node.name)
        return io_seconds, version

    def _load_projection(
        self, projection: Projection, rows: RowSet, direct: bool, ops: List[dict]
    ) -> float:
        proj_rows = rows.select(list(projection.columns))
        io_seconds = 0.0
        if projection.segmentation.is_replicated:
            targets = {r: proj_rows for r in range(len(self.node_order))}
            replicated = True
        else:
            targets = self.shard_map.split_rowset(
                proj_rows, list(projection.segmentation.columns)
            )
            replicated = False
        for region, part in sorted(targets.items()):
            base_node = self.nodes[self.node_order[region]]
            base_node.ensure_up()
            if direct or replicated:
                io_seconds += self._write_ros(
                    base_node, projection, region if not replicated else REPLICA_SHARD_ID, part, ops
                )
                if not replicated:
                    buddy_node = self.nodes[self.buddy_node_of_region(region)]
                    buddy_node.ensure_up()
                    io_seconds += self._write_ros(
                        buddy_node,
                        self.catalog.state.projection(projection.name + "_b1"),
                        region,
                        part,
                        ops,
                    )
            else:
                base_node.wos.insert(projection.name, part)
                if not replicated:
                    buddy_node = self.nodes[self.buddy_node_of_region(region)]
                    buddy_node.wos.insert(projection.name + "_b1", part)
        return io_seconds

    def _write_ros(
        self,
        node: Node,
        projection: Projection,
        region: int,
        part: RowSet,
        ops: List[dict],
    ) -> float:
        if part.num_rows == 0:
            return 0.0
        sorted_rows = part.sort_by(list(projection.sort_order))
        data = write_container(sorted_rows)
        sid = node.sid_factory.next_sid()
        node.local_fs.write(str(sid), data)
        self.container_owner[str(sid)] = node.name
        mins, maxs = container_stats(sorted_rows)
        ops.append(
            op_add_container(
                ROSContainer(
                    sid=sid,
                    projection=projection.name,
                    shard_id=region,
                    row_count=sorted_rows.num_rows,
                    size_bytes=len(data),
                    min_values=mins,
                    max_values=maxs,
                )
            )
        )
        return node.local_fs.estimate_write_seconds(len(data))

    # -- tuple mover: moveout ------------------------------------------------------------

    def moveout(self, node_name: str) -> int:
        """Convert this node's WOS contents into sorted ROS containers."""
        node = self.nodes[node_name]
        node.ensure_up()
        moved = 0
        ops: List[dict] = []
        for projection_name in list(node.wos.projections()):
            rows = node.wos.drain(projection_name)
            if rows is None or rows.num_rows == 0:
                continue
            projection = self.catalog.state.projection(projection_name)
            if projection.segmentation.is_replicated:
                self._write_ros(node, projection, REPLICA_SHARD_ID, rows, ops)
            else:
                seg_source = (
                    self.catalog.state.projection(projection.buddy_of)
                    if projection.is_buddy
                    else projection
                )
                by_region = self.shard_map.split_rowset(
                    rows, list(seg_source.segmentation.columns)
                )
                for region, part in sorted(by_region.items()):
                    self._write_ros(node, projection, region, part, ops)
            moved += rows.num_rows
        if ops:
            self._commit(ops)
        return moved

    # -- tuple mover: mergeout (per node, independently — section 6.2) ------------------

    def mergeout(self, node_name: str, strata_width: int = 4,
                 base_bytes: int = 4096) -> int:
        """Compact this node's containers.

        "In Enterprise mode, each node runs mergeout independently and
        replicated data will be redundantly merged by multiple nodes" —
        no coordinator, and base/buddy copies are merged separately.
        Returns the number of merge jobs run.
        """
        from repro.storage.container import container_stats as _stats
        from repro.tuple_mover.mergeout import select_mergeout_candidates

        node = self.nodes[node_name]
        node.ensure_up()
        state = self.catalog.state
        mine: Dict[Tuple[str, int, object], List[ROSContainer]] = {}
        for c in state.containers.values():
            if self.container_owner.get(str(c.sid)) == node_name:
                mine.setdefault((c.projection, c.shard_id, c.partition_key), []).append(c)
        jobs_run = 0
        ops: List[dict] = []
        for (projection_name, region, partition_key), containers in sorted(
            mine.items(), key=lambda kv: (kv[0][0], kv[0][1], str(kv[0][2]))
        ):
            projection = state.projections.get(projection_name)
            if projection is None:
                continue
            for job in select_mergeout_candidates(
                containers, strata_width=strata_width, base_bytes=base_bytes
            ):
                parts = []
                for container in job:
                    data = node.local_fs.read(container.location)
                    parts.append(read_container(data).read_rowset())
                merged = RowSet.concat(parts).sort_by(list(projection.sort_order))
                image = write_container(merged)
                sid = node.sid_factory.next_sid()
                node.local_fs.write(str(sid), image)
                self.container_owner[str(sid)] = node_name
                mins, maxs = _stats(merged)
                ops.append(op_add_container(ROSContainer(
                    sid=sid, projection=projection_name, shard_id=region,
                    row_count=merged.num_rows, size_bytes=len(image),
                    min_values=mins, max_values=maxs,
                    partition_key=partition_key,
                )))
                for container in job:
                    ops.append(op_drop_container(str(container.sid), region))
                    node.local_fs.delete(container.location)
                    self.container_owner.pop(str(container.sid), None)
                jobs_run += 1
        if ops:
            self._commit(ops)
        return jobs_run

    # -- queries ----------------------------------------------------------------------------

    def create_session(self, seed: Optional[int] = None) -> EnterpriseSession:
        if self.shut_down:
            raise ClusterError("cluster is shut down")
        if seed is None:
            seed = next(self._session_counter)
        region_server: Dict[int, str] = {}
        for region in range(len(self.node_order)):
            base = self.node_order[region]
            if self.nodes[base].is_up:
                region_server[region] = base
            else:
                buddy = self.buddy_node_of_region(region)
                if not self.nodes[buddy].is_up:
                    raise ShardCoverageLost(
                        f"region {region}: node and buddy both down"
                    )
                region_server[region] = buddy
        up = sorted(n.name for n in self.up_nodes())
        if not up:
            raise NodeDown("no nodes up")
        return EnterpriseSession(region_server, initiator=up[seed % len(up)])

    def query(
        self,
        sql: str,
        seed: Optional[int] = None,
        session: Optional[EnterpriseSession] = None,
        ticket=None,
        batched: Optional[bool] = None,
        batch_size: Optional[int] = None,
        sip: bool = True,
        pushdown: str = "off",
    ) -> QueryResult:
        from collections import Counter

        from repro.sql.ast import Select

        statements = parse(sql)
        if len(statements) != 1 or not isinstance(statements[0], Select):
            raise CatalogError("query() accepts a single SELECT")
        if session is None:
            session = self.create_session(seed=seed)
        own_ticket = None
        if ticket is None and self.admission is not None:
            # Enterprise demand: one slot per region served — every up
            # node, which is exactly why concurrency does not scale out.
            demand = dict(Counter(session.region_server.values()))
            demand.setdefault(session.initiator, 1)
            own_ticket = self.admission.admit(demand, session.initiator)
            ticket = own_ticket
        try:
            with self.catalog.snapshot() as snapshot:
                bound = bind_select(statements[0], snapshot.state)
                plan = plan_query(bound, snapshot.state)
                provider = EnterpriseStorageProvider(self, session, snapshot.state)
                executor = Executor(
                    provider,
                    self.cost_model,
                    batched=self.batched if batched is None else batched,
                    batch_size=self.batch_size if batch_size is None else batch_size,
                    sip=sip,
                    # Local-disk provider: ``set_pushdown`` is the ABC no-op,
                    # so the option is accepted for API parity but inert.
                    pushdown=pushdown,
                )
                result = executor.execute(plan)
                self.engine_stats.note(executor)
                if ticket is not None and ticket.queue_wait_seconds:
                    result.stats.dispatch_seconds += ticket.queue_wait_seconds
                return result
        finally:
            if own_ticket is not None:
                self.admission.release(own_ticket)

    # -- elasticity: full redistribution (the paper's anti-pattern) -----------------

    def add_node(self, name: str) -> int:
        """Add a node the Enterprise way: re-segment *everything*.

        "A fixed layout can place related records on the same node ... but
        is inelastic because adjusting the node set requires expensive
        reshuffling of all the stored data" (section 9; also section 8:
        "Enterprise must redistribute the entire data set").  Every
        segmented projection's rows are re-hashed over the new N+1-region
        map and rewritten, base and buddy.  Returns bytes rewritten.
        """
        if name in self.nodes:
            raise ClusterError(f"node {name} already exists")
        # WOS rows are segmented under the old map; flush them first.
        for existing in list(self.nodes):
            if self.nodes[existing].is_up and self.nodes[existing].wos.total_rows:
                self.moveout(existing)
        state = self.catalog.state
        # Snapshot every segmented projection's full contents first.
        contents: Dict[str, RowSet] = {}
        for projection in state.projections.values():
            if projection.is_buddy or projection.segmentation.is_replicated:
                continue
            parts = []
            for container in state.containers_of(projection.name):
                owner = self.container_owner.get(str(container.sid))
                if owner is None or not self.nodes[owner].is_up:
                    continue
                data = self.nodes[owner].local_fs.read(container.location)
                parts.append(read_container(data).read_rowset())
            if parts:
                contents[projection.name] = RowSet.concat(parts)

        node = Node(
            name,
            cache_bytes=0,
            execution_slots=next(iter(self.nodes.values())).execution_slots,
            rng=random.Random(self.rng.getrandbits(64)),
        )
        node.local_fs.read_bandwidth = EBS_READ_BANDWIDTH
        node.local_fs.write_bandwidth = EBS_WRITE_BANDWIDTH
        node.wos = WOS(self.nodes[self.node_order[0]].wos.capacity_rows)
        self.nodes[name] = node
        self.node_order.append(name)
        self.shard_map = ShardMap(len(self.node_order))

        # Drop all old segmented containers and rewrite under the new map.
        ops: List[dict] = []
        for projection_name, rows in contents.items():
            projection = state.projection(projection_name)
            for container in state.containers_of(projection_name):
                self._drop_local(container)
                ops.append(op_drop_container(str(container.sid), container.shard_id))
            buddy_name = projection_name + "_b1"
            for container in state.containers_of(buddy_name):
                self._drop_local(container)
                ops.append(op_drop_container(str(container.sid), container.shard_id))
            by_region = self.shard_map.split_rowset(
                rows, list(projection.segmentation.columns)
            )
            buddy = state.projection(buddy_name)
            for region, part in sorted(by_region.items()):
                base_node = self.nodes[self.node_order[region]]
                self._write_ros(base_node, projection, region, part, ops)
                buddy_node = self.nodes[self.buddy_node_of_region(region)]
                self._write_ros(buddy_node, buddy, region, part, ops)
        # Replicated projections additionally need a copy on the new node.
        for projection in list(state.projections.values()):
            if not projection.segmentation.is_replicated:
                continue
            for container in state.containers_of(projection.name):
                owner = self.container_owner.get(str(container.sid))
                if owner is None or not self.nodes[owner].is_up:
                    continue
                data = self.nodes[owner].local_fs.read(container.location)
                rows = read_container(data).read_rowset()
                self._write_ros(node, projection, REPLICA_SHARD_ID, rows, ops)
                break  # one source copy is enough
        if ops:
            self._commit(ops)
        return sum(
            op["container"]["size_bytes"]
            for op in ops
            if op["op"] == "add_container"
        )

    def _drop_local(self, container: ROSContainer) -> None:
        owner = self.container_owner.pop(str(container.sid), None)
        if owner is not None and owner in self.nodes:
            self.nodes[owner].local_fs.delete(container.location)

    # -- failure & recovery -------------------------------------------------------------------

    def kill_node(self, name: str) -> None:
        self.nodes[name].go_down()
        self.check_viability()

    def recover_node(self, name: str) -> int:
        """Repair-style recovery: rebuild all the node's containers from
        buddies — a logical transfer proportional to the node's entire
        data set (section 6.1).  Returns bytes transferred."""
        node = self.nodes[name]
        if node.is_up:
            raise ClusterError(f"node {name} already up")
        node.state = NodeState.UP
        region = self.region_of_node(name)
        bytes_transferred = 0
        state = self.catalog.state
        ops: List[dict] = []
        for container in list(state.containers.values()):
            if self.container_owner.get(str(container.sid)) != name:
                continue
            projection = (
                state.projections.get(container.projection)
            )
            if projection is None:
                continue
            # Fetch the same rows from the surviving copy.
            source = self._surviving_copy(container, state)
            if source is None:
                raise ShardCoverageLost(
                    f"no surviving copy for container {container.sid}"
                )
            src_node, src_container = source
            data = self.nodes[src_node].local_fs.read(str(src_container.sid))
            rows = read_container(data).read_rowset()
            rebuilt = write_container(rows.sort_by(list(projection.sort_order)))
            new_sid = node.sid_factory.next_sid()
            node.local_fs.write(str(new_sid), rebuilt)
            self.container_owner[str(new_sid)] = name
            del self.container_owner[str(container.sid)]
            bytes_transferred += len(rebuilt)
            mins, maxs = container_stats(rows)
            ops.append(op_drop_container(str(container.sid), container.shard_id))
            ops.append(
                op_add_container(
                    ROSContainer(
                        sid=new_sid,
                        projection=container.projection,
                        shard_id=container.shard_id,
                        row_count=container.row_count,
                        size_bytes=len(rebuilt),
                        min_values=mins,
                        max_values=maxs,
                        partition_key=container.partition_key,
                    )
                )
            )
        if ops:
            self._commit(ops)
        return bytes_transferred

    def _surviving_copy(
        self, container: ROSContainer, state
    ) -> Optional[Tuple[str, ROSContainer]]:
        """Find an up node holding the same region's data for this
        projection family (base <-> buddy)."""
        projection = state.projections.get(container.projection)
        if projection is None:
            return None
        if projection.is_buddy:
            family = [projection.buddy_of]
        else:
            family = [p.name for p in state.projections_of(projection.anchor_table)
                      if p.buddy_of == projection.name]
            if projection.segmentation.is_replicated:
                family = [projection.name]
        for name in family:
            for candidate in state.containers_of(name, container.shard_id):
                owner = self.container_owner.get(str(candidate.sid))
                if owner and self.nodes[owner].is_up:
                    return owner, candidate
        # Replicated projections: any up node's copy of the same projection.
        if projection.segmentation.is_replicated:
            for candidate in state.containers_of(projection.name, container.shard_id):
                owner = self.container_owner.get(str(candidate.sid))
                if owner and self.nodes[owner].is_up and str(candidate.sid) != str(container.sid):
                    return owner, candidate
        return None


class EnterpriseStorageProvider(StorageProvider):
    """Scans node-local containers; a buddy serves a down node's region."""

    def __init__(self, cluster: EnterpriseCluster, session: EnterpriseSession, state):
        self.cluster = cluster
        self.session = session
        self.state = state

    def participants(self) -> List[str]:
        return sorted({n for n in self.session.region_server.values()})

    def initiator(self) -> str:
        return self.session.initiator

    def scan(
        self,
        node_name: str,
        projection: str,
        columns: Sequence[str],
        predicate: Optional[Expr],
        replicated: bool,
    ) -> ScanResult:
        cluster = self.cluster
        node = cluster.nodes[node_name]
        node.ensure_up()
        state = self.state
        schema = self._schema(projection, columns)
        result = ScanResult(rows=RowSet.empty(schema))
        parts: List[RowSet] = []

        if replicated:
            containers = [
                c
                for c in state.containers_of(projection, REPLICA_SHARD_ID)
                if cluster.container_owner.get(str(c.sid)) == node_name
            ]
            self._scan_containers(node, containers, columns, predicate, parts, result)
            wos_rows = node.wos.read(projection)
            if wos_rows is not None:
                parts.append(self._filter(wos_rows.select(list(columns)), predicate))
        else:
            proj_obj = state.projections.get(projection)
            buddy_name = projection + "_b1"
            for region in self.session.regions_of(node_name):
                own_region = cluster.region_of_node(node_name) == region
                use_projection = projection if own_region else buddy_name
                containers = [
                    c
                    for c in state.containers_of(use_projection, region)
                    if cluster.container_owner.get(str(c.sid)) == node_name
                ]
                self._scan_containers(node, containers, columns, predicate, parts, result)
                wos_rows = node.wos.read(use_projection)
                if wos_rows is not None:
                    seg_cols = list(proj_obj.segmentation.columns)
                    mask = cluster.shard_map.shards_of_rowset(wos_rows, seg_cols) == region
                    slice_rows = wos_rows.filter(mask).select(list(columns))
                    parts.append(self._filter(slice_rows, predicate))
        if parts:
            result.rows = RowSet.concat([p for p in parts if p.num_rows] or parts[:1])
        return result

    def _scan_containers(self, node, containers, columns, predicate, parts, result):
        kept, pruned = prune_containers(
            sorted(containers, key=lambda c: str(c.sid)), predicate
        )
        result.containers_pruned += pruned
        for container in kept:
            data = node.local_fs.read(container.location)
            result.io_seconds += node.local_fs.estimate_read_seconds(len(data))
            result.bytes_from_cache += len(data)  # local disk, not S3
            rows = read_container(data).read_rowset(list(columns))
            parts.append(rows)
            result.containers_scanned += 1

    @staticmethod
    def _filter(rows: RowSet, predicate: Optional[Expr]) -> RowSet:
        # WOS rows are filtered here; container predicates are applied by
        # the executor after the scan returns (it re-applies the scan
        # predicate), so returning unfiltered rows is also correct — we
        # filter to keep row counts comparable.
        return rows

    def _schema(self, projection_name: str, columns: Sequence[str]):
        projection = self.state.projections.get(projection_name)
        table = self.state.table(projection.anchor_table)
        return table.schema.subset(list(columns))

"""Exception hierarchy for the Eon-mode reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate on the specific condition.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CatalogError(ReproError):
    """A catalog operation failed (missing object, duplicate name, ...)."""


class TransactionAborted(ReproError):
    """A transaction was rolled back.

    Raised both for explicit rollbacks and for commit-time validation
    failures (OCC write-set conflicts, subscription-change invariant
    violations per paper section 3.2/4.5).
    """


class OCCConflict(TransactionAborted):
    """Optimistic concurrency control validation failed at commit time."""


class StorageError(ReproError):
    """A storage-layer (local or shared) operation failed."""


class ObjectNotFound(StorageError):
    """The requested object does not exist in the filesystem/object store."""


class TransientStorageError(StorageError):
    """A retryable shared-storage failure (throttling, internal error).

    The simulated S3 backend raises this to exercise the retry loop that
    section 5.3 of the paper calls out as mandatory for production S3 use.
    """


class StorageUnavailable(StorageError):
    """Shared storage is in a sustained outage window.

    Unlike :class:`TransientStorageError`, this is *not* retried: during a
    declared outage every request would fail, so the retry loop fails fast
    and the cluster drops into degraded read-only mode instead (serving
    depot-resident data, rejecting writes with this error).
    """


class ClusterError(ReproError):
    """Cluster-level failure (quorum loss, shard coverage loss, ...)."""


class QuorumLost(ClusterError):
    """Fewer than a quorum of nodes are up; the cluster shuts down."""


class ShardCoverageLost(ClusterError):
    """Some shard has no ACTIVE subscriber; the cluster is not viable."""


class NodeDown(ClusterError):
    """An operation was routed to a node that is not up."""


class ReviveError(ClusterError):
    """Revive from shared storage could not complete (e.g. live lease)."""


class AdmissionRejected(ReproError):
    """The workload manager refused to admit a query.

    Raised when a resource pool's queue is full, when a queued admission
    waited past the pool's queue timeout, when a synchronous caller
    (no event loop running) asks for slots that are currently busy, when
    the pool's overload breaker is shedding arrivals, or when the pool is
    draining for scale-in.  The statement never started executing;
    retrying after backoff is safe.
    """

    def __init__(self, message: str, pool: str = "", reason: str = "rejected"):
        super().__init__(message)
        self.pool = pool
        #: ``queue_full`` | ``timeout`` | ``busy`` | ``shed`` | ``draining``
        self.reason = reason


class PlanningError(ReproError):
    """The query planner could not produce a plan."""


class SqlError(ReproError):
    """SQL lexing/parsing/binding failed."""


class ExecutionError(ReproError):
    """Runtime failure while executing a query plan."""


class QueryCancelled(ExecutionError):
    """The query was cancelled by the user or by node failure handling."""

"""Automatic subscription rebalancing (section 6.4).

The paper describes a rebalance process that adjusts shard subscriptions
when the node set changes.  Our reproduction previously relied on
``check_viability`` raising and an operator fixing coverage by hand; the
rebalancer turns that into a periodic service:

* a shard with **no** up ACTIVE subscriber is *uncovered* — promote an
  existing up subscriber through the legal Figure-4 transitions (PASSIVE
  or REMOVING straight to ACTIVE; PENDING via PASSIVE), or subscribe a
  spare node if no promotable subscription exists;
* a shard with **fewer** up ACTIVE subscribers than the configured
  ``subscribers_per_shard`` (capped by the number of up nodes) has lost
  fault tolerance — first promote existing up subscriptions, then
  subscribe the least-loaded up nodes that do not hold one.

The rebalancer never acts on a shut-down or degraded (storage-outage)
cluster: subscription changes are commits, and commits are rejected in
both states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sharding.subscription import SubscriptionState, can_transition


@dataclass
class RebalanceReport:
    """What one rebalancer pass changed."""

    #: (node, shard) subscriptions promoted to ACTIVE through legal transitions.
    promoted: List[Tuple[str, int]] = field(default_factory=list)
    #: (node, shard) fresh subscriptions created on spare nodes.
    subscribed: List[Tuple[str, int]] = field(default_factory=list)
    #: True when the pass was skipped (cluster shut down or degraded).
    skipped: bool = False

    @property
    def changes(self) -> int:
        return len(self.promoted) + len(self.subscribed)


class SubscriptionRebalancer:
    """Detect uncovered / under-subscribed shards and repair them."""

    def __init__(self, cluster, warm_cache: bool = True):
        self.cluster = cluster
        self.warm_cache = warm_cache

    # -- state inspection ------------------------------------------------------

    def _sub_states(self, shard_id: int) -> Dict[str, SubscriptionState]:
        state = self.cluster.any_up_node().catalog.state
        return {
            n: SubscriptionState(st)
            for (n, s), st in state.subscriptions.items()
            if s == shard_id
        }

    def _subscription_load(self) -> Dict[str, int]:
        state = self.cluster.any_up_node().catalog.state
        load: Dict[str, int] = {name: 0 for name in self.cluster.nodes}
        for (n, _shard), _st in state.subscriptions.items():
            if n in load:
                load[n] += 1
        return load

    def desired_subscribers(self) -> int:
        up = sum(1 for n in self.cluster.nodes.values() if n.is_up)
        return min(self.cluster.subscribers_per_shard, up)

    def deficits(self) -> Dict[int, int]:
        """Shard -> missing up-ACTIVE subscriber count (only shards short)."""
        want = self.desired_subscribers()
        out: Dict[int, int] = {}
        for shard_id in self.cluster.shard_map.all_shard_ids():
            have = len(self.cluster.active_up_subscribers(shard_id))
            if have < want:
                out[shard_id] = want - have
        return out

    # -- repair actions --------------------------------------------------------

    def _promote(self, node: str, shard_id: int, current: SubscriptionState) -> None:
        cluster = self.cluster
        if current is SubscriptionState.PENDING:
            # PENDING -> ACTIVE is not legal; finish the subscription
            # process instead (metadata transfer, then PASSIVE).
            cluster._backfill_shard_metadata(cluster.nodes[node], shard_id)
            cluster._commit_sub_state(node, shard_id, SubscriptionState.PASSIVE)
            current = SubscriptionState.PASSIVE
        if current is SubscriptionState.PASSIVE and self.warm_cache:
            cluster._warm_cache_from_peer(cluster.nodes[node], shard_id)
        cluster._commit_sub_state(node, shard_id, SubscriptionState.ACTIVE)

    def _promotable(self, shard_id: int) -> List[Tuple[str, SubscriptionState]]:
        """Up nodes holding a non-ACTIVE subscription that can legally
        reach ACTIVE, most-ready first (REMOVING already serves queries,
        PASSIVE has metadata, PENDING has neither)."""
        rank = {
            SubscriptionState.REMOVING: 0,
            SubscriptionState.PASSIVE: 1,
            SubscriptionState.PENDING: 2,
        }
        nodes = self.cluster.nodes
        out = [
            (n, st)
            for n, st in sorted(self._sub_states(shard_id).items())
            if st is not SubscriptionState.ACTIVE
            and n in nodes
            and nodes[n].is_up
            and (
                can_transition(st, SubscriptionState.ACTIVE)
                or st is SubscriptionState.PENDING
            )
        ]
        out.sort(key=lambda pair: (rank[pair[1]], pair[0]))
        return out

    def _spares(self, shard_id: int) -> List[str]:
        """Up nodes with no subscription to the shard, least-loaded first."""
        held = set(self._sub_states(shard_id))
        load = self._subscription_load()
        spares = [
            n
            for n, node in self.cluster.nodes.items()
            if node.is_up and n not in held
        ]
        spares.sort(key=lambda n: (load.get(n, 0), n))
        return spares

    # -- the service entry point -----------------------------------------------

    def run(self) -> RebalanceReport:
        report = RebalanceReport()
        cluster = self.cluster
        if cluster.shut_down or getattr(cluster, "degraded", False):
            report.skipped = True
            return report
        for shard_id, missing in sorted(self.deficits().items()):
            for node, st in self._promotable(shard_id):
                if missing <= 0:
                    break
                self._promote(node, shard_id, st)
                report.promoted.append((node, shard_id))
                missing -= 1
            for node in self._spares(shard_id):
                if missing <= 0:
                    break
                cluster.subscribe(node, shard_id, warm_cache=self.warm_cache)
                report.subscribed.append((node, shard_id))
                missing -= 1
        return report

"""Recovery: mid-query failover and automatic subscription rebalancing.

The paper's availability story (quorum + shard coverage, section 3.4; node
recovery, section 6.1; rebalance, section 6.4) assumes failures happen
*between* queries.  This package closes the gap for failures that land
mid-flight:

* :class:`FailoverPolicy` bounds the session-level query failover loop in
  ``EonCluster.query_statement`` — when a participant dies mid-query the
  cluster re-selects participating subscriptions over the surviving up
  ACTIVE subscribers and re-executes, charging the backoff to the cost
  model instead of burning wall-clock;
* :class:`SubscriptionRebalancer` is the periodic service that detects
  uncovered and under-subscribed shards and promotes or subscribes spare
  nodes automatically, replacing "check_viability raises and the operator
  fixes it by hand".
"""

from repro.recovery.failover import FailoverPolicy
from repro.recovery.rebalance import RebalanceReport, SubscriptionRebalancer

__all__ = [
    "FailoverPolicy",
    "RebalanceReport",
    "SubscriptionRebalancer",
]

"""Bounds and backoff for session-level query failover."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FailoverPolicy:
    """How hard ``query_statement`` tries before surfacing a failure.

    ``max_attempts`` counts executions, not retries: the default of 3
    allows the original run plus two failovers.  Each retry charges
    exponential backoff to the query's cost-model latency (simulated
    seconds, never wall-clock sleeps) so a failed-over query is visibly
    slower than an undisturbed one — the Figure-12 dip, per query.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be non-negative")

    def backoff_for(self, attempt: int) -> float:
        """Simulated seconds charged before retry number ``attempt`` (1-based)."""
        return self.backoff_seconds * (2 ** (attempt - 1))

"""The Tuple Mover: mergeout (Eon + Enterprise) and moveout (Enterprise).

Mergeout compacts ROS containers so their count stays bounded: it picks
containers from an exponentially tiered strata structure (each tuple is
merged only a small fixed number of times), merge-sorts them, purges
deleted rows, and commits the swap.  In Eon mode a per-shard *mergeout
coordinator* is elected so conflicting jobs never run concurrently
(section 6.2); the coordinator can run jobs itself or farm them out.
"""

from repro.tuple_mover.mergeout import (
    MergeoutCoordinatorService,
    MergeoutReport,
    select_mergeout_candidates,
)

__all__ = [
    "MergeoutCoordinatorService",
    "MergeoutReport",
    "select_mergeout_candidates",
]

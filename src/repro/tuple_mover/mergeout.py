"""Mergeout: ROS container compaction (sections 2.3 and 6.2).

Strata selection: containers are bucketed by size into exponential tiers
(tier k holds containers of ~``base * width**k`` bytes).  When a tier
accumulates ``strata_width`` containers they merge into one container a
tier up — so any tuple participates in at most ``log_width(total)``
merges, the "exponentially tiered strata algorithm" that bounds write
amplification.

Deleted rows are purged during mergeout ("deleted data is purged during
mergeout and the number of deleted records on a storage is a factor in its
selection").

Eon coordination: exactly one subscriber per shard is the mergeout
coordinator (stored as a committed cluster property).  If the coordinator
fails, the cluster commits a transaction selecting a new one, keeping the
load balanced across subscribers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.disk_cache import ObjectInfo
from repro.catalog.mvcc import op_add_container, op_drop_container, op_set_property
from repro.cluster.transactions import Transaction
from repro.errors import ClusterError
from repro.sharding.shard import REPLICA_SHARD_ID
from repro.storage.container import (
    ROSContainer,
    RowSet,
    container_stats,
    read_container,
    write_container,
)
from repro.storage.delete_vector import (
    combine_positions,
    mask_from_positions,
    read_delete_vector,
)

#: Default strata geometry.
STRATA_BASE_BYTES = 4096
STRATA_WIDTH = 4


def _stratum_of(size_bytes: int, base: int = STRATA_BASE_BYTES, width: int = STRATA_WIDTH) -> int:
    stratum = 0
    bound = base
    while size_bytes > bound:
        stratum += 1
        bound *= width
    return stratum


def select_mergeout_candidates(
    containers: Sequence[ROSContainer],
    deleted_counts: Optional[Dict[str, int]] = None,
    strata_width: int = STRATA_WIDTH,
    base_bytes: int = STRATA_BASE_BYTES,
) -> List[List[ROSContainer]]:
    """Pick groups of containers to merge.

    A stratum holding ``strata_width`` or more containers yields one merge
    job (its smallest members first — classic tiered compaction).
    Containers with many deleted rows get a stratum discount so they merge
    sooner and their tombstones are purged.
    """
    deleted_counts = deleted_counts or {}
    strata: Dict[int, List[ROSContainer]] = {}
    for container in containers:
        stratum = _stratum_of(container.size_bytes, base_bytes, strata_width)
        deleted = deleted_counts.get(str(container.sid), 0)
        if container.row_count and deleted / container.row_count >= 0.2:
            stratum = max(0, stratum - 1)  # favour purging heavy deleters
        strata.setdefault(stratum, []).append(container)
    jobs: List[List[ROSContainer]] = []
    for stratum in sorted(strata):
        members = sorted(strata[stratum], key=lambda c: (c.size_bytes, str(c.sid)))
        while len(members) >= strata_width:
            jobs.append(members[:strata_width])
            members = members[strata_width:]
    return jobs


@dataclass
class MergeoutReport:
    jobs_run: int = 0
    containers_merged: int = 0
    containers_written: int = 0
    rows_purged: int = 0
    bytes_read: int = 0
    bytes_written: int = 0


class MergeoutCoordinatorService:
    """Per-shard mergeout coordination for an Eon cluster."""

    def __init__(self, cluster, strata_width: int = STRATA_WIDTH,
                 base_bytes: int = STRATA_BASE_BYTES):
        self.cluster = cluster
        self.strata_width = strata_width
        self.base_bytes = base_bytes

    # -- coordinator election -------------------------------------------------------

    @staticmethod
    def _property_key(shard_id: int) -> str:
        return f"mergeout_coordinator_{shard_id}"

    def coordinator_of(self, shard_id: int) -> Optional[str]:
        state = self.cluster.any_up_node().catalog.state
        name = state.properties.get(self._property_key(shard_id))
        return name if isinstance(name, str) else None

    def ensure_coordinators(self) -> Dict[int, str]:
        """Elect (or re-elect after failure) one coordinator per shard,
        balancing the count of shards each node coordinates."""
        cluster = self.cluster
        assignments: Dict[int, str] = {}
        load: Dict[str, int] = {n.name: 0 for n in cluster.up_nodes()}
        txn = Transaction()
        changed = False
        for shard_id in cluster.shard_map.all_shard_ids():
            current = self.coordinator_of(shard_id)
            subscribers = cluster.active_up_subscribers(shard_id)
            if current is not None and current in subscribers:
                assignments[shard_id] = current
                load[current] = load.get(current, 0) + 1
                continue
            if not subscribers:
                raise ClusterError(f"no up subscriber for shard {shard_id}")
            chosen = min(subscribers, key=lambda n: (load.get(n, 0), n))
            load[chosen] = load.get(chosen, 0) + 1
            assignments[shard_id] = chosen
            txn.add_op(op_set_property(self._property_key(shard_id), chosen))
            changed = True
        if changed:
            cluster.commit(txn)
        return assignments

    # -- running mergeout -----------------------------------------------------------------

    def run_shard(self, shard_id: int, max_jobs: Optional[int] = None) -> MergeoutReport:
        """Run pending mergeout jobs for a shard on its coordinator."""
        cluster = self.cluster
        coordinators = self.ensure_coordinators()
        coordinator_name = coordinators[shard_id]
        node = cluster.nodes[coordinator_name]
        state = node.catalog.state
        report = MergeoutReport()

        # Group per (projection, partition): Vertica never merges across
        # partitions, so partition pruning keeps working after mergeout.
        by_projection: Dict[Tuple[str, object], List[ROSContainer]] = {}
        for container in state.containers.values():
            if container.shard_id == shard_id:
                key = (container.projection, container.partition_key)
                by_projection.setdefault(key, []).append(container)

        deleted_counts = {
            str(dv.target_sid): dv.deleted_count
            for dv in state.delete_vectors.values()
        }

        for projection_name, partition_key in sorted(
            by_projection, key=lambda k: (k[0], str(k[1]))
        ):
            jobs = select_mergeout_candidates(
                by_projection[(projection_name, partition_key)],
                deleted_counts,
                self.strata_width,
                self.base_bytes,
            )
            if max_jobs is not None:
                jobs = jobs[: max(0, max_jobs - report.jobs_run)]
            for job in jobs:
                self._run_job(node, state, projection_name, shard_id, job, report)
        return report

    def run_all(self, max_jobs_per_shard: Optional[int] = None) -> MergeoutReport:
        total = MergeoutReport()
        for shard_id in self.cluster.shard_map.all_shard_ids():
            r = self.run_shard(shard_id, max_jobs_per_shard)
            total.jobs_run += r.jobs_run
            total.containers_merged += r.containers_merged
            total.containers_written += r.containers_written
            total.rows_purged += r.rows_purged
            total.bytes_read += r.bytes_read
            total.bytes_written += r.bytes_written
        return total

    def _run_job(
        self,
        node,
        state,
        projection_name: str,
        shard_id: int,
        job: List[ROSContainer],
        report: MergeoutReport,
    ) -> None:
        cluster = self.cluster
        sort_order: Tuple[str, ...] = ()
        projection = state.projections.get(projection_name)
        if projection is not None:
            sort_order = tuple(projection.sort_order)
        else:
            lap = state.live_aggs.get(projection_name)
            if lap is not None:
                sort_order = tuple(lap.group_by)

        parts: List[RowSet] = []
        purged = 0
        bytes_before = report.bytes_read
        for container in job:
            data, _, _ = node.fetch_storage(container.location, cluster.shared_data)
            report.bytes_read += len(data)
            rows = read_container(data).read_rowset()
            dvs = state.delete_vectors_for(str(container.sid))
            if dvs:
                positions = combine_positions(
                    [
                        read_delete_vector(
                            node.fetch_storage(dv.location, cluster.shared_data)[0]
                        )
                        for dv in dvs
                    ]
                )
                purged += len(positions)
                rows = rows.filter(mask_from_positions(positions, container.row_count))
            parts.append(rows)
        bytes_in = report.bytes_read - bytes_before
        merged = RowSet.concat(parts).sort_by(list(sort_order))
        data = write_container(merged)
        sid = node.sid_factory.next_sid()
        info = ObjectInfo(projection=projection_name, shard_id=shard_id)
        # "The file compaction mechanism (mergeout) puts its output files
        # into the cache and also uploads them to the shared storage."
        node.write_storage(str(sid), data, cluster.shared_data, info=info)
        mins, maxs = container_stats(merged)
        txn = Transaction()
        if shard_id != REPLICA_SHARD_ID:
            txn.expect_subscription(shard_id, node.name)
        txn.add_op(
            op_add_container(
                ROSContainer(
                    sid=sid,
                    projection=projection_name,
                    shard_id=shard_id,
                    row_count=merged.num_rows,
                    size_bytes=len(data),
                    min_values=mins,
                    max_values=maxs,
                    partition_key=job[0].partition_key,
                )
            )
        )
        for container in job:
            txn.add_op(op_drop_container(str(container.sid), shard_id))
        # "The input containers are dropped at the end of the mergeout
        # transaction" — the commit informs the other subscribers.
        cluster.commit(txn)
        report.jobs_run += 1
        report.containers_merged += len(job)
        report.containers_written += 1
        report.rows_purged += purged
        report.bytes_written += len(data)
        # Peer caches get the merged file too.
        for peer_name in cluster.active_up_subscribers(shard_id):
            if peer_name != node.name:
                cluster.nodes[peer_name].cache.put(str(sid), data, info=info)
        obs = getattr(cluster, "obs", None)  # enterprise clusters have none
        if obs is not None and obs.enabled:
            shared = cluster.shared_data
            obs.tracer.record(
                "mergeout_job",
                duration=shared.estimate_read_seconds(bytes_in)
                + shared.estimate_write_seconds(len(data)),
                node=node.name,
                projection=projection_name,
                shard=shard_id,
                containers_in=len(job),
                bytes_read=bytes_in,
                bytes_written=len(data),
                rows_purged=purged,
            )
            obs.metrics.counter("mergeout.jobs", node=node.name).inc()
            obs.metrics.counter("mergeout.bytes_written", node=node.name).inc(len(data))
            obs.metrics.counter("mergeout.rows_purged", node=node.name).inc(purged)

"""Container- and block-level pruning from min/max statistics.

"Vertica accomplishes this by tracking minimum and maximum values of
columns in each storage and using expression analysis to determine if a
predicate could ever be true for the given minimum and maximum"
(section 2.1).  Storage providers call :func:`prune_containers` before
fetching container bytes; scans additionally prune blocks inside a
container through :meth:`ColumnReader.blocks_possibly_matching`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.engine.expressions import Bounds, Expr
from repro.storage.container import ROSContainer


def container_bounds(container: ROSContainer) -> Bounds:
    mins = dict(container.min_values)
    maxs = dict(container.max_values)
    return {name: (mins.get(name), maxs.get(name)) for name in mins}


def prune_containers(
    containers: Iterable[ROSContainer], predicate: Optional[Expr]
) -> Tuple[List[ROSContainer], int]:
    """Keep containers the predicate could match; returns (kept, pruned)."""
    kept: List[ROSContainer] = []
    pruned = 0
    for container in containers:
        if predicate is not None and not predicate.could_match(
            container_bounds(container)
        ):
            pruned += 1
            continue
        kept.append(container)
    return kept, pruned

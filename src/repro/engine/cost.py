"""Cost model: translate work done into simulated seconds.

Absolute numbers are calibrated to commodity hardware orders of magnitude
only; experiments compare *configurations* (Enterprise vs Eon-cached vs
Eon-from-S3, 3 vs 6 vs 9 nodes), so what matters is that the relative
magnitudes — per-row CPU cost, local-disk vs S3 bandwidth, per-request S3
latency, network shipping — are realistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CostModel:
    """Per-unit simulated costs used by the executor."""

    #: CPU seconds per row per operator touch (scan decode, filter, join
    #: probe, aggregate update): ~50M rows/s/core.
    row_cpu_seconds: float = 2e-8
    #: Extra per-value decode cost applied per scanned cell.
    cell_cpu_seconds: float = 5e-9
    #: Node-to-node network: bandwidth and per-message latency.
    network_bandwidth: float = 1.0e9
    network_latency: float = 0.0005
    #: Fixed per-query planning/dispatch overhead on the initiator.
    dispatch_seconds: float = 0.002

    def network_seconds(self, nbytes: int, messages: int = 1) -> float:
        return messages * self.network_latency + nbytes / self.network_bandwidth


@dataclass
class NodeWork:
    """Per-node accounting for one query."""

    io_seconds: float = 0.0
    cpu_seconds: float = 0.0
    bytes_from_cache: int = 0
    bytes_from_shared: int = 0
    rows_scanned: int = 0
    rows_processed: int = 0
    containers_scanned: int = 0
    containers_pruned: int = 0
    blocks_pruned: int = 0
    #: Parallel I/O scheduler accounting (see :mod:`repro.io.scheduler`).
    prefetch_hits: int = 0
    peer_fetches: int = 0
    coalesced_gets: int = 0
    #: Server-side pushdown accounting: containers scanned via
    #: ``select_scan`` and the stored bytes those scans touched.
    pushdown_scans: int = 0
    bytes_scanned: int = 0

    @property
    def busy_seconds(self) -> float:
        return self.io_seconds + self.cpu_seconds


@dataclass
class QueryStats:
    """Aggregated execution statistics for one query."""

    per_node: Dict[str, NodeWork] = field(default_factory=dict)
    network_bytes: int = 0
    network_seconds: float = 0.0
    initiator_cpu_seconds: float = 0.0
    dispatch_seconds: float = 0.0

    def node(self, name: str) -> NodeWork:
        if name not in self.per_node:
            self.per_node[name] = NodeWork()
        return self.per_node[name]

    @property
    def latency_seconds(self) -> float:
        """Estimated wall-clock: slowest node + exchange + initiator work.

        Participating nodes execute their fragments in parallel, so the
        critical path is the busiest node, then network shipping, then the
        initiator's merge/sort work.
        """
        slowest = max((w.busy_seconds for w in self.per_node.values()), default=0.0)
        return (
            self.dispatch_seconds
            + slowest
            + self.network_seconds
            + self.initiator_cpu_seconds
        )

    @property
    def total_bytes_from_shared(self) -> int:
        return sum(w.bytes_from_shared for w in self.per_node.values())

    @property
    def total_bytes_from_cache(self) -> int:
        return sum(w.bytes_from_cache for w in self.per_node.values())

    @property
    def total_rows_scanned(self) -> int:
        return sum(w.rows_scanned for w in self.per_node.values())

    @property
    def total_prefetch_hits(self) -> int:
        return sum(w.prefetch_hits for w in self.per_node.values())

    @property
    def total_peer_fetches(self) -> int:
        return sum(w.peer_fetches for w in self.per_node.values())

    @property
    def total_coalesced_gets(self) -> int:
        return sum(w.coalesced_gets for w in self.per_node.values())

    @property
    def total_pushdown_scans(self) -> int:
        return sum(w.pushdown_scans for w in self.per_node.values())

    @property
    def total_bytes_scanned(self) -> int:
        return sum(w.bytes_scanned for w in self.per_node.values())


# ---------------------------------------------------------------------------
# scan-strategy selection (depot vs raw GET vs server-side pushdown)


def estimate_selectivity(bounds: Dict[str, tuple], container) -> float:
    """Fraction of a container's rows a predicate plausibly keeps.

    Classic interval-overlap estimate against the container's per-column
    min/max metadata (the same stats container pruning uses): each bounded
    numeric column contributes ``overlap(bound, [min, max]) / span`` and
    columns multiply as if independent.  Non-numeric or stat-less columns
    contribute nothing (selectivity 1.0 for that column); a degenerate span
    (min == max) contributes 1.0 when the bound covers the point.  Purely a
    *planning* estimate — strategy choice may be wrong, never the rows.
    """
    selectivity = 1.0
    for column, (lo, hi) in bounds.items():
        cmin, cmax = container.min_of(column), container.max_of(column)
        if not isinstance(cmin, (int, float)) or not isinstance(cmax, (int, float)):
            continue
        if isinstance(cmin, bool) or isinstance(cmax, bool):
            continue
        lo_eff = cmin if lo is None or not isinstance(lo, (int, float)) else max(float(lo), float(cmin))
        hi_eff = cmax if hi is None or not isinstance(hi, (int, float)) else min(float(hi), float(cmax))
        if lo_eff > hi_eff:
            return 0.0
        span = float(cmax) - float(cmin)
        if span <= 0:
            continue
        selectivity *= (hi_eff - lo_eff) / span
    return selectivity


def estimate_pushdown_bytes(scanned_bytes: int, selectivity: float) -> int:
    """Bytes a select would *return* given bytes it must scan: the scanned
    columns shrunk by the predicate's estimated selectivity."""
    return int(scanned_bytes * max(0.0, min(1.0, selectivity)))


def choose_scan_strategy(
    mode: str,
    *,
    resident: bool,
    use_cache: bool,
    has_delete_vectors: bool,
    eligible: bool,
    supports_select: bool,
    fetch_seconds: float,
    pushdown_seconds: float,
) -> str:
    """Pick how one container reaches the scan: ``depot``, ``get``, or
    ``pushdown``.

    The decision table (also in DESIGN.md):

    * no depot session (``use_cache=False``) — raw ``get``, never cached;
    * container already resident — ``depot`` (nothing beats a warm hit);
    * ``mode=off``, backend without select support, delete vectors present,
      or a scan the planner did not mark eligible — ``depot`` (cold fetch);
    * ``mode=on`` — ``pushdown`` (operator override);
    * ``mode=auto`` — ``pushdown`` only when the cost model estimates the
      select to be strictly faster than the cold-depot fetch.
    """
    if not use_cache:
        return "get"
    if resident:
        return "depot"
    if mode == "off" or not supports_select or has_delete_vectors or not eligible:
        return "depot"
    if mode == "on":
        return "pushdown"
    return "pushdown" if pushdown_seconds < fetch_seconds else "depot"

"""Cost model: translate work done into simulated seconds.

Absolute numbers are calibrated to commodity hardware orders of magnitude
only; experiments compare *configurations* (Enterprise vs Eon-cached vs
Eon-from-S3, 3 vs 6 vs 9 nodes), so what matters is that the relative
magnitudes — per-row CPU cost, local-disk vs S3 bandwidth, per-request S3
latency, network shipping — are realistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple


@dataclass
class CostModel:
    """Per-unit simulated costs used by the executor."""

    #: CPU seconds per row per operator touch (scan decode, filter, join
    #: probe, aggregate update): ~50M rows/s/core.
    row_cpu_seconds: float = 2e-8
    #: Extra per-value decode cost applied per scanned cell.
    cell_cpu_seconds: float = 5e-9
    #: Node-to-node network: bandwidth and per-message latency.
    network_bandwidth: float = 1.0e9
    network_latency: float = 0.0005
    #: Fixed per-query planning/dispatch overhead on the initiator.
    dispatch_seconds: float = 0.002

    def network_seconds(self, nbytes: int, messages: int = 1) -> float:
        return messages * self.network_latency + nbytes / self.network_bandwidth


@dataclass
class NodeWork:
    """Per-node accounting for one query."""

    io_seconds: float = 0.0
    cpu_seconds: float = 0.0
    bytes_from_cache: int = 0
    bytes_from_shared: int = 0
    rows_scanned: int = 0
    rows_processed: int = 0
    containers_scanned: int = 0
    containers_pruned: int = 0
    blocks_pruned: int = 0
    #: Parallel I/O scheduler accounting (see :mod:`repro.io.scheduler`).
    prefetch_hits: int = 0
    peer_fetches: int = 0
    coalesced_gets: int = 0
    #: Server-side pushdown accounting: containers scanned via
    #: ``select_scan`` and the stored bytes those scans touched.
    pushdown_scans: int = 0
    bytes_scanned: int = 0

    @property
    def busy_seconds(self) -> float:
        return self.io_seconds + self.cpu_seconds


@dataclass
class QueryStats:
    """Aggregated execution statistics for one query."""

    per_node: Dict[str, NodeWork] = field(default_factory=dict)
    network_bytes: int = 0
    network_seconds: float = 0.0
    initiator_cpu_seconds: float = 0.0
    dispatch_seconds: float = 0.0

    def node(self, name: str) -> NodeWork:
        if name not in self.per_node:
            self.per_node[name] = NodeWork()
        return self.per_node[name]

    @property
    def latency_seconds(self) -> float:
        """Estimated wall-clock: slowest node + exchange + initiator work.

        Participating nodes execute their fragments in parallel, so the
        critical path is the busiest node, then network shipping, then the
        initiator's merge/sort work.
        """
        slowest = max((w.busy_seconds for w in self.per_node.values()), default=0.0)
        return (
            self.dispatch_seconds
            + slowest
            + self.network_seconds
            + self.initiator_cpu_seconds
        )

    @property
    def total_bytes_from_shared(self) -> int:
        return sum(w.bytes_from_shared for w in self.per_node.values())

    @property
    def total_bytes_from_cache(self) -> int:
        return sum(w.bytes_from_cache for w in self.per_node.values())

    @property
    def total_rows_scanned(self) -> int:
        return sum(w.rows_scanned for w in self.per_node.values())

    @property
    def total_prefetch_hits(self) -> int:
        return sum(w.prefetch_hits for w in self.per_node.values())

    @property
    def total_peer_fetches(self) -> int:
        return sum(w.peer_fetches for w in self.per_node.values())

    @property
    def total_coalesced_gets(self) -> int:
        return sum(w.coalesced_gets for w in self.per_node.values())

    @property
    def total_pushdown_scans(self) -> int:
        return sum(w.pushdown_scans for w in self.per_node.values())

    @property
    def total_bytes_scanned(self) -> int:
        return sum(w.bytes_scanned for w in self.per_node.values())


# ---------------------------------------------------------------------------
# scan-strategy selection (depot vs raw GET vs server-side pushdown)


def estimate_selectivity(bounds: Dict[str, tuple], container) -> float:
    """Fraction of a container's rows a predicate plausibly keeps.

    Classic interval-overlap estimate against the container's per-column
    min/max metadata (the same stats container pruning uses): each bounded
    numeric column contributes ``overlap(bound, [min, max]) / span`` and
    columns multiply as if independent.  Non-numeric or stat-less columns
    contribute nothing (selectivity 1.0 for that column); a degenerate span
    (min == max) contributes 1.0 when the bound covers the point.  Purely a
    *planning* estimate — strategy choice may be wrong, never the rows.
    """
    selectivity = 1.0
    for column, (lo, hi) in bounds.items():
        cmin, cmax = container.min_of(column), container.max_of(column)
        if not isinstance(cmin, (int, float)) or not isinstance(cmax, (int, float)):
            continue
        if isinstance(cmin, bool) or isinstance(cmax, bool):
            continue
        lo_eff = cmin if lo is None or not isinstance(lo, (int, float)) else max(float(lo), float(cmin))
        hi_eff = cmax if hi is None or not isinstance(hi, (int, float)) else min(float(hi), float(cmax))
        if lo_eff > hi_eff:
            return 0.0
        span = float(cmax) - float(cmin)
        if span <= 0:
            continue
        selectivity *= (hi_eff - lo_eff) / span
    return selectivity


def estimate_pushdown_bytes(scanned_bytes: int, selectivity: float) -> int:
    """Bytes a select would *return* given bytes it must scan: the scanned
    columns shrunk by the predicate's estimated selectivity."""
    return int(scanned_bytes * max(0.0, min(1.0, selectivity)))


def choose_scan_strategy(
    mode: str,
    *,
    resident: bool,
    use_cache: bool,
    has_delete_vectors: bool,
    eligible: bool,
    supports_select: bool,
    fetch_seconds: float,
    pushdown_seconds: float,
) -> str:
    """Pick how one container reaches the scan: ``depot``, ``get``, or
    ``pushdown``.

    The decision table (also in DESIGN.md):

    * no depot session (``use_cache=False``) — raw ``get``, never cached;
    * container already resident — ``depot`` (nothing beats a warm hit);
    * ``mode=off``, backend without select support, delete vectors present,
      or a scan the planner did not mark eligible — ``depot`` (cold fetch);
    * ``mode=on`` — ``pushdown`` (operator override);
    * ``mode=auto`` — ``pushdown`` only when the cost model estimates the
      select to be strictly faster than the cold-depot fetch.
    """
    if not use_cache:
        return "get"
    if resident:
        return "depot"
    if mode == "off" or not supports_select or has_delete_vectors or not eligible:
        return "depot"
    if mode == "on":
        return "pushdown"
    return "pushdown" if pushdown_seconds < fetch_seconds else "depot"


# ---------------------------------------------------------------------------
# design-time estimation (Database Designer v2)
#
# The designer scores candidate physical layouts through the same per-unit
# charges the executor applies at run time: per-row/per-cell CPU, cold
# container fetches at S3 latency/bandwidth, broadcast shipping when a join's
# build side is not co-segmented with the probe stream, and a two-phase
# gather when group keys do not cover the stream's segmentation.  The result
# is a *work-proportional* estimate of the critical path (total work divided
# by scan parallelism), which is what makes per-table scan terms separable —
# the property the designer's branch-and-bound lower bound relies on.

#: Stored bytes per cell by column type, for sizing candidate containers.
#: VARCHAR assumes short dictionary-friendly strings; the write path picks
#: real per-block encodings, so these only need to rank layouts correctly.
DESIGN_BYTES_PER_CELL: Dict[str, float] = {
    "int": 8.0, "float": 8.0, "date": 8.0, "bool": 1.0, "varchar": 16.0,
}

#: Encoded-size discounts for sorted columns: the leading sort column is
#: run/delta friendly (RLE on low cardinality, DELTA on ints), trailing
#: sort columns still compress better than unsorted ones.
DESIGN_LEAD_SORT_DISCOUNT = 0.35
DESIGN_TRAIL_SORT_DISCOUNT = 0.8

#: Target container file size the estimator assumes when converting layout
#: bytes into GET counts (real sizes depend on load batching).
DESIGN_CONTAINER_BYTES = 1 << 20

#: Floor/ceiling for predicate-selectivity estimates: equality predicates
#: collapse interval overlap to ~0, but a scan still touches >= 1 container.
DESIGN_MIN_SELECTIVITY = 0.01


@dataclass
class TableLayout:
    """One candidate (or existing) physical layout of a table, as the
    design-time estimator sees it: the projection shape plus the row count
    and per-column raw cell widths needed to size scans and fetches."""

    table: str
    columns: Tuple[str, ...]
    sort_order: Tuple[str, ...]
    #: Hash-segmentation columns; empty means replicated.
    segmentation_columns: Tuple[str, ...]
    row_count: int
    bytes_per_cell: Mapping[str, float]

    @property
    def is_replicated(self) -> bool:
        return not self.segmentation_columns

    def cell_bytes(self, column: str) -> float:
        """Stored bytes per value, after the sort-encoding discount."""
        raw = self.bytes_per_cell.get(column, 8.0)
        if self.sort_order and column == self.sort_order[0]:
            return raw * DESIGN_LEAD_SORT_DISCOUNT
        if column in self.sort_order:
            return raw * DESIGN_TRAIL_SORT_DISCOUNT
        return raw

    def row_bytes(self, columns: Optional[Sequence[str]] = None) -> float:
        cols = self.columns if columns is None else columns
        return sum(self.cell_bytes(c) for c in cols)

    def total_bytes(self) -> float:
        """Stored footprint of one full copy of this layout."""
        return self.row_count * self.row_bytes()


@dataclass(frozen=True)
class DesignJoin:
    """One equi-join edge of a workload query, with the already-joined
    side's keys qualified by owning table (bare names collide across
    tables; qualification is what designer v1 got wrong)."""

    table: str  # the build-side table being joined in
    left_keys: Tuple[Tuple[str, str], ...]  # ((table, column), ...) probe side
    right_keys: Tuple[str, ...]  # columns of `table`


@dataclass
class QueryShape:
    """Designer-side summary of one workload query: exactly what layout
    cost depends on — scanned columns, predicate selectivities, join keys,
    group keys — and nothing else."""

    tables: Tuple[str, ...]
    columns: Mapping[str, Tuple[str, ...]]  # per-table scanned columns
    filters: Mapping[str, Mapping[str, float]]  # table -> column -> selectivity
    joins: Tuple[DesignJoin, ...] = ()
    group_columns: Tuple[Tuple[str, str], ...] = ()  # qualified (table, column)
    is_aggregate: bool = False
    weight: float = 1.0
    #: Fraction of scanned containers expected to miss the depot (from
    #: recorded RequestRecord stats; 1.0 = design for fully cold reads).
    cold_fraction: float = 1.0


@dataclass
class DesignCost:
    """Accumulated design-time cost of a workload under one layout set."""

    seconds: float = 0.0
    s3_gets: float = 0.0
    s3_dollars: float = 0.0

    def add(self, other: "DesignCost", weight: float = 1.0) -> None:
        self.seconds += weight * other.seconds
        self.s3_gets += weight * other.s3_gets
        self.s3_dollars += weight * other.s3_dollars


def _filtered_fraction(filters: Mapping[str, float]) -> float:
    fraction = 1.0
    for selectivity in filters.values():
        fraction *= max(DESIGN_MIN_SELECTIVITY, min(1.0, selectivity))
    return fraction


def _pruned_fraction(layout: TableLayout, filters: Mapping[str, float]) -> float:
    """Fraction of stored rows a scan must touch after container/block
    pruning: the product of selectivities along the sort-order prefix that
    the query actually filters (pruning stops at the first unfiltered sort
    column, mirroring how min/max metadata loses power off-prefix)."""
    fraction = 1.0
    for column in layout.sort_order:
        if column not in filters:
            break
        fraction *= max(DESIGN_MIN_SELECTIVITY, min(1.0, filters[column]))
    return fraction


def estimate_scan_cost(
    shape: QueryShape,
    table: str,
    layout: TableLayout,
    node_count: int,
    model: Optional[CostModel] = None,
    s3_latency=None,
    s3_cost=None,
) -> Optional[DesignCost]:
    """Cost of scanning one table of ``shape`` through ``layout``.

    Returns ``None`` when the layout cannot serve the query (a scanned
    column is missing).  Separable by construction: depends only on this
    table's layout, never on the other tables' — the branch-and-bound
    lower bound sums per-table minima of exactly this function.
    """
    from repro.shared_storage.s3 import S3CostModel, S3LatencyModel

    model = model or CostModel()
    s3_latency = s3_latency or S3LatencyModel()
    s3_cost = s3_cost or S3CostModel()
    scan_columns = shape.columns.get(table, ())
    if not set(scan_columns) <= set(layout.columns):
        return None
    filters = shape.filters.get(table, {})
    pruned = _pruned_fraction(layout, filters)
    rows_scanned = layout.row_count * pruned
    # Containers hold every column of the layout, so a cold fetch pays for
    # the layout's full width — the reason narrow projections win cold.
    container_bytes = max(1.0, layout.total_bytes())
    containers = max(1.0, container_bytes / DESIGN_CONTAINER_BYTES)
    # Replicated projections are scanned by a single participant; segmented
    # ones split the shard work across the up nodes — but never below
    # container granularity: a one-container scan is latency-bound and
    # gains nothing from more participants.  Whole containers only — a
    # fractional count here would hand *wider* layouts more parallelism
    # (same CPU divided by a bigger denominator), making fat projections
    # score faster than narrow ones.
    parallelism = (
        1.0 if layout.is_replicated
        else max(1.0, min(float(node_count), float(int(containers))))
    )
    cpu = rows_scanned * (
        model.row_cpu_seconds
        + len(scan_columns) * model.cell_cpu_seconds
        + (model.row_cpu_seconds if filters else 0.0)
    )
    fetched_bytes = container_bytes * pruned
    gets = max(1.0, containers * pruned) * shape.cold_fraction
    io = shape.cold_fraction * (
        max(1.0, containers * pruned) * s3_latency.request_seconds
        + fetched_bytes / s3_latency.read_bandwidth
    )
    return DesignCost(
        seconds=(cpu + io) / parallelism,
        s3_gets=gets,
        s3_dollars=gets * s3_cost.get_cost(),
    )


def estimate_maintenance_cost(
    layout: TableLayout, s3_latency=None, s3_cost=None
) -> DesignCost:
    """One-time cost of materialising a layout: uploading its containers.

    Charged once per layout per workload window so "add every projection
    you can imagine" does not come out free."""
    from repro.shared_storage.s3 import S3CostModel, S3LatencyModel

    s3_latency = s3_latency or S3LatencyModel()
    s3_cost = s3_cost or S3CostModel()
    nbytes = layout.total_bytes()
    containers = max(1.0, nbytes / DESIGN_CONTAINER_BYTES)
    return DesignCost(
        seconds=containers * s3_latency.request_seconds
        + nbytes / s3_latency.write_bandwidth,
        s3_dollars=containers * s3_cost.put_cost(),
    )


#: Bytes per row the estimator assumes crossing the wire for shipped build
#: sides, gathered partial aggregates, and final result rows.
_DESIGN_SHIP_ROW_BYTES = 16.0
#: Cap on distinct groups assumed per node when sizing two-phase gathers.
_DESIGN_MAX_GROUPS = 4096.0


def estimate_query_cost(
    shape: QueryShape,
    layouts: Mapping[str, TableLayout],
    node_count: int,
    model: Optional[CostModel] = None,
    s3_latency=None,
    s3_cost=None,
) -> Optional[DesignCost]:
    """Work-proportional cost of one query under a full layout assignment:
    per-table scan terms (separable) plus join locality, aggregation
    phases, and dispatch (the non-negative interaction terms)."""
    model = model or CostModel()
    cost = DesignCost(seconds=model.dispatch_seconds)
    for table in shape.tables:
        layout = layouts.get(table)
        if layout is None:
            return None
        scan = estimate_scan_cost(
            shape, table, layout, node_count, model, s3_latency, s3_cost
        )
        if scan is None:
            return None
        cost.add(scan)
    first = layouts[shape.tables[0]]
    # The probe stream's hash alignment: qualified columns it is currently
    # distributed on (None = single-node / replicated stream).
    alignment = (
        None
        if first.is_replicated
        else {(shape.tables[0], c) for c in first.segmentation_columns}
    )
    probe_rows = first.row_count * _filtered_fraction(
        shape.filters.get(shape.tables[0], {})
    )
    for join in shape.joins:
        build = layouts[join.table]
        build_rows = build.row_count * _filtered_fraction(
            shape.filters.get(join.table, {})
        )
        build_bytes = build_rows * build.row_bytes(
            shape.columns.get(join.table, build.columns)
        )
        paired = dict(zip(join.right_keys, join.left_keys))
        co_segmented = (
            not build.is_replicated
            and alignment is not None
            and all(c in paired for c in build.segmentation_columns)
            and {paired[c] for c in build.segmentation_columns} <= alignment
        )
        local = build.is_replicated or alignment is None or co_segmented
        if not local:
            # Broadcast the build side to every other participant.
            cost.seconds += model.network_seconds(
                int(build_bytes * max(0, node_count - 1)),
                messages=max(1, node_count - 1),
            )
        cost.seconds += (
            (build_rows + probe_rows)
            * model.row_cpu_seconds
            / (1 if alignment is None else max(1, node_count))
        )
    if shape.is_aggregate:
        group_set = set(shape.group_columns)
        one_phase = alignment is not None and alignment <= group_set
        if alignment is not None and not one_phase:
            partials = min(probe_rows, _DESIGN_MAX_GROUPS) * max(1, node_count)
            cost.seconds += model.network_seconds(
                int(partials * _DESIGN_SHIP_ROW_BYTES), messages=max(1, node_count)
            )
            cost.seconds += partials * model.row_cpu_seconds
    elif alignment is not None:
        cost.seconds += model.network_seconds(
            int(probe_rows * _DESIGN_SHIP_ROW_BYTES), messages=max(1, node_count)
        )
    return cost


def estimate_workload_cost(
    shapes: Sequence[QueryShape],
    layouts: Mapping[str, TableLayout],
    node_count: int,
    model: Optional[CostModel] = None,
    s3_latency=None,
    s3_cost=None,
) -> Optional[DesignCost]:
    """Workload-wide score of a layout assignment: the weighted sum of
    per-query costs plus each layout's one-time maintenance charge.
    ``None`` when any layout cannot serve a query it anchors."""
    total = DesignCost()
    for shape in shapes:
        query = estimate_query_cost(
            shape, layouts, node_count, model, s3_latency, s3_cost
        )
        if query is None:
            return None
        total.add(query, weight=shape.weight)
    for table in sorted(layouts):
        total.add(estimate_maintenance_cost(layouts[table], s3_latency, s3_cost))
    return total

"""Cost-based distributed planner.

Converts a :class:`~repro.sql.binder.BoundQuery` into a physical plan,
making the three decisions Vertica's optimizer makes that matter for Eon:

1. **Projection choice** per table: a covering projection, preferring a
   *local* one — segmentation matching the table's join keys, or
   replicated (either way the join needs no broadcast) — then the
   narrowest covering one.  Live aggregate projections rewrite matching
   single-table aggregations into LAP scans.
2. **Join locality**: a join is local when the build side is replicated or
   both sides are co-segmented through the equi-join keys (section 4:
   "identical values will be hashed to same value, be stored in the same
   shard, and served by the same node"); otherwise the build side is
   broadcast.
3. **Aggregation strategy**: one-phase when group keys cover the stream's
   segmentation columns (groups cannot straddle nodes), else two-phase
   partial/final.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.catalog.mvcc import CatalogState
from repro.catalog.objects import LiveAggregateProjection, Projection
from repro.engine.expressions import ColumnRef, Expr
from repro.engine.operators import AggregateSpec
from repro.engine.plan import (
    AggregateNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    probe_spine_scan,
    walk,
)
from repro.errors import PlanningError
from repro.sql.binder import BoundQuery


@dataclass
class PhysicalPlan:
    """A plan tree plus the distribution facts the executor needs."""

    root: PlanNode
    projections_used: Dict[str, str]  # table -> projection name
    #: Columns the final stream is segmented by, or None if the stream is
    #: fully replicated on every participant (single-node execution).
    alignment: Optional[Tuple[str, ...]]
    single_node: bool = False
    used_live_aggregate: Optional[str] = None

    def describe(self) -> str:
        mode = "single-node" if self.single_node else f"aligned on {self.alignment}"
        return f"-- {mode} --\n{self.root.describe()}"


def plan_slot_demand(
    plan: PhysicalPlan, share_counts: Dict[str, int], initiator: str
) -> Dict[str, int]:
    """Per-node execution-slot demand for one query.

    The paper's section 4.2 throughput model gives a query exactly ``S``
    of the cluster's ``N * E`` slots — one per shard it scans, no more.
    ``share_counts`` maps each participating node to the number of shards
    (shares) it serves in this session, so crunch sharing naturally
    demands more slots.  A single-node plan (pure system-table read,
    constant query) needs one slot on the initiator; on distributed plans
    the initiator's merge stage rides on coordination, not a slot — the
    elastic scaling of Figure 11a depends on the footprint staying ``S``
    as nodes are added.
    """
    if plan.single_node or not share_counts:
        return {initiator: 1}
    return {
        node: max(1, int(count)) for node, count in sorted(share_counts.items())
    }


def plan_query(bound: BoundQuery, catalog: CatalogState) -> PhysicalPlan:
    """Produce the physical plan for a bound query."""
    lap_plan = _try_live_aggregate(bound, catalog)
    if lap_plan is not None:
        return lap_plan

    projections: Dict[str, str] = {}
    # 1. Choose a projection per table.
    chosen: Dict[str, Projection] = {}
    join_keys_by_table = _join_keys_by_table(bound)
    for table in bound.tables:
        projection = _choose_projection(
            table,
            bound.columns_needed.get(table, set()),
            join_keys_by_table.get(table, set()),
            catalog,
        )
        chosen[table] = projection
        projections[table] = projection.name

    # 2. Build the join tree with locality decisions.
    first = bound.tables[0]
    node: PlanNode = _scan_node(first, chosen[first], bound)
    alignment = _scan_alignment(chosen[first])
    for edge in bound.join_edges:
        right_proj = chosen[edge.table]
        right_scan = _scan_node(edge.table, right_proj, bound)
        locality, new_alignment = _join_locality(
            alignment, right_proj, edge.left_keys, edge.right_keys
        )
        node = JoinNode(
            left=node,
            right=right_scan,
            left_keys=tuple(edge.left_keys),
            right_keys=tuple(edge.right_keys),
            how=edge.how,
            locality=locality,
        )
        alignment = new_alignment

    if bound.residual_filter is not None:
        node = FilterNode(node, bound.residual_filter)

    # 3. Aggregation.
    if bound.is_aggregate:
        if bound.group_exprs:
            # Materialise computed group keys (plus everything aggregates
            # and outputs still need) before aggregating.
            passthrough = _columns_below_aggregate(bound)
            outputs = tuple(
                [(name, ColumnRef(name)) for name in sorted(passthrough)]
                + list(bound.group_exprs)
            )
            node = ProjectNode(node, outputs)
        strategy = _aggregate_strategy(bound, alignment)
        node = AggregateNode(
            node,
            tuple(bound.group_names),
            tuple(bound.agg_specs),
            strategy=strategy,
        )
        if bound.having is not None:
            node = FilterNode(node, bound.having)

    # 4. Final projection to the SELECT list.
    node = ProjectNode(node, tuple(bound.outputs))

    # 5. Order / limit.
    if bound.order:
        node = SortNode(node, tuple(bound.order))
    if bound.limit is not None or bound.offset:
        node = LimitNode(node, bound.limit, bound.offset)

    _annotate_sip(node)
    _annotate_pushdown(node)
    return PhysicalPlan(
        root=node,
        projections_used=projections,
        alignment=alignment,
        single_node=alignment is None,
    )


def _annotate_sip(root: PlanNode) -> None:
    """Resolve each inner equi-join's SIP target at plan time.

    Single-key inner joins whose probe key traces to a base column of a
    probe-spine scan are annotated with that scan; the batched executor
    pushes an IN-list of build-side key values into the scan's predicate
    (sideways information passing), shrinking what the scan fetches and
    decodes.  Multi-key and outer joins are left alone.
    """
    for n in walk(root):
        if (
            isinstance(n, JoinNode)
            and n.how == "inner"
            and len(n.left_keys) == 1
        ):
            n.sip_scan, n.sip_column = probe_spine_scan(n.left, n.left_keys[0])


def _annotate_pushdown(root: PlanNode) -> None:
    """Mark scans that are candidates for server-side pushdown.

    A scan is eligible when its effective predicate can shrink what
    shared storage must return: it carries a bounded column predicate
    (``extract_column_bounds`` finds at least one interval — the same
    bounds container pruning uses), or a SIP IN-list will be merged into
    it at execution time.  Replicated projections stay ineligible: they
    are small by construction and every node scans all of them, so the
    depot pays for itself immediately.  Eligibility is a *candidacy*
    marker; the cost model still decides per container.
    """
    from repro.engine.expressions import extract_column_bounds

    sip_targets = {
        id(n.sip_scan)
        for n in walk(root)
        if isinstance(n, JoinNode) and n.sip_scan is not None
    }
    for n in walk(root):
        if not isinstance(n, ScanNode) or n.replicated:
            continue
        bounded = (
            n.predicate is not None and bool(extract_column_bounds(n.predicate))
        )
        n.pushdown_eligible = bounded or id(n) in sip_targets


# ---------------------------------------------------------------------------
# projection choice


def _choose_projection(
    table: str, needed: Set[str], join_keys: Set[str], catalog: CatalogState
) -> Projection:
    candidates = [
        p
        for p in catalog.projections_of(table)
        if not p.is_buddy and needed <= set(p.columns)
    ]
    if not candidates:
        raise PlanningError(
            f"no projection of {table!r} covers columns {sorted(needed)}"
        )
    # Prefer a *local* projection — one whose segmentation matches this
    # table's join keys, or a replicated one (``_join_locality`` treats
    # both the same: neither needs a broadcast) — then fewest columns
    # (narrowest covering projection).  Ranking replicated projections as
    # local keeps a query mix on one set of containers: without it, joins
    # pick the co-segmented super while scans pick a replicated designed
    # projection, and the depot pays cold fetches for both.
    def rank(p: Projection) -> tuple:
        seg_cols = set(p.segmentation.columns)
        co_segmented = bool(seg_cols) and seg_cols <= join_keys
        local = co_segmented or p.segmentation.is_replicated
        return (0 if local else 1, len(p.columns), p.name)

    return min(candidates, key=rank)


def _join_keys_by_table(bound: BoundQuery) -> Dict[str, Set[str]]:
    keys: Dict[str, Set[str]] = {}
    for edge in bound.join_edges:
        keys.setdefault(edge.table, set()).update(edge.right_keys)
        for left_key in edge.left_keys:
            # left keys belong to some earlier table; note them generously
            # (the binder guarantees uniqueness of column names).
            for table in bound.tables:
                if left_key in bound.columns_needed.get(table, set()):
                    keys.setdefault(table, set()).add(left_key)
    return keys


def _scan_node(table: str, projection: Projection, bound: BoundQuery) -> ScanNode:
    needed = bound.columns_needed.get(table, set())
    # Scan only needed columns, in projection column order for determinism.
    columns = tuple(c for c in projection.columns if c in needed)
    if not columns:
        # Count-only scans still need one column to know row counts; take
        # the first projection column.
        columns = (projection.columns[0],)
    return ScanNode(
        table=table,
        projection=projection.name,
        columns=columns,
        predicate=bound.table_filters.get(table),
        replicated=projection.segmentation.is_replicated,
    )


def _scan_alignment(projection: Projection) -> Optional[Tuple[str, ...]]:
    if projection.segmentation.is_replicated:
        return None
    return tuple(projection.segmentation.columns)


def _join_locality(
    alignment: Optional[Tuple[str, ...]],
    right: Projection,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
) -> Tuple[str, Optional[Tuple[str, ...]]]:
    """Decide local vs broadcast and the post-join alignment."""
    if right.segmentation.is_replicated:
        # Replicated build side is present on every node: always local.
        return "local", alignment
    right_seg = tuple(right.segmentation.columns)
    key_map = {r: l for l, r in zip(left_keys, right_keys)}
    if alignment is None:
        # Replicated probe side joined with segmented build side: each node
        # joins its shards of the build side against the full probe side.
        return "local", right_seg
    if all(r in key_map for r in right_seg):
        mapped = tuple(key_map[r] for r in right_seg)
        if mapped == alignment:
            return "local", alignment
    return "broadcast", alignment


def _aggregate_strategy(bound: BoundQuery, alignment: Optional[Tuple[str, ...]]) -> str:
    if alignment is None:
        # Whole stream on (each) node; executor runs single-node, so a
        # complete aggregate is correct.
        return "one_phase"
    if alignment and set(alignment) <= set(bound.group_names):
        return "one_phase"
    has_distinct = any(s.distinct for s in bound.agg_specs)
    if has_distinct and len(bound.agg_specs) > 1:
        # Mixed distinct + other aggregates cannot use mergeable partials;
        # fall back to shipping rows and aggregating on the initiator.
        return "gather_complete"
    return "two_phase"


def _columns_below_aggregate(bound: BoundQuery) -> Set[str]:
    needed: Set[str] = set()
    for spec in bound.agg_specs:
        if spec.argument is not None:
            needed |= spec.argument.columns_used()
    for name in bound.group_names:
        if not any(name == g for g, _ in bound.group_exprs):
            needed.add(name)
    return needed


# ---------------------------------------------------------------------------
# live aggregate projection rewrite


def _try_live_aggregate(
    bound: BoundQuery, catalog: CatalogState
) -> Optional[PhysicalPlan]:
    """Rewrite a matching single-table aggregate into a LAP scan.

    Conditions: one table, no filters, group-by is exactly the LAP's group
    columns, and every aggregate is a plain sum/count/min/max over a LAP
    aggregate column.
    """
    if len(bound.tables) != 1 or bound.join_edges:
        return None
    if bound.table_filters or bound.residual_filter is not None:
        return None
    if not bound.agg_specs or not bound.group_names:
        return None
    table = bound.tables[0]
    for lap in catalog.live_aggs_of(table):
        if tuple(bound.group_names) != tuple(lap.group_by):
            continue
        mapping = _match_lap_aggregates(bound.agg_specs, lap)
        if mapping is None:
            continue
        schema = lap.output_schema(catalog.table(table).schema)
        scan = ScanNode(
            table=table,
            projection=lap.name,
            columns=tuple(schema.names),
            predicate=None,
            replicated=lap.segmentation.is_replicated,
        )
        # LAP containers hold partial aggregates; merging them is exactly a
        # "final" aggregation over the pre-aggregated rows.
        merge_specs = tuple(
            AggregateSpec(merge_func, ColumnRef(lap_col), output)
            for merge_func, lap_col, output in mapping
        )
        alignment = _scan_alignment_lap(lap)
        strategy = (
            "one_phase"
            if alignment is not None and set(alignment) <= set(bound.group_names)
            else "two_phase"
        )
        node: PlanNode = AggregateNode(
            scan, tuple(bound.group_names), merge_specs, strategy=strategy
        )
        if bound.having is not None:
            node = FilterNode(node, bound.having)
        node = ProjectNode(node, tuple(bound.outputs))
        if bound.order:
            node = SortNode(node, tuple(bound.order))
        if bound.limit is not None:
            node = LimitNode(node, bound.limit)
        return PhysicalPlan(
            root=node,
            projections_used={table: lap.name},
            alignment=alignment,
            single_node=alignment is None,
            used_live_aggregate=lap.name,
        )
    return None


def _scan_alignment_lap(lap: LiveAggregateProjection) -> Optional[Tuple[str, ...]]:
    if lap.segmentation.is_replicated:
        return None
    return tuple(lap.segmentation.columns)


def _match_lap_aggregates(
    specs: Sequence[AggregateSpec], lap: LiveAggregateProjection
) -> Optional[List[Tuple[str, str, str]]]:
    """Match query aggregates to LAP columns; mergeable funcs only.

    A query ``sum(x)`` merges from a LAP ``sum(x)`` column by summing;
    ``count(...)`` merges by summing the LAP count; min/max by min/max.
    ``avg`` and distinct aggregates do not merge from partials.

    Returns ``(merge_func, lap_column, output_name)`` triples, or None when
    the LAP cannot answer the query.
    """
    mapping: List[Tuple[str, str, str]] = []
    merge_func = {"sum": "sum", "count": "sum", "min": "min", "max": "max"}
    for spec in specs:
        if spec.distinct or spec.func not in merge_func:
            return None
        arg_name = (
            spec.argument.name
            if isinstance(spec.argument, ColumnRef)
            else (None if spec.argument is None else False)
        )
        if arg_name is False:
            return None
        found = None
        for lap_agg in lap.aggregates:
            if lap_agg.func == spec.func and lap_agg.argument == arg_name:
                found = lap_agg.output_name
                break
        if found is None:
            return None
        mapping.append((merge_func[spec.func], found, spec.output))
    return mapping

"""Pipelined batch execution support: chunking, pooled I/O charges, stats.

The materializing executor evaluates each operator over a whole
intermediate before the next operator starts, so a fragment's scans run
strictly one after another and every ``fetch_batch`` charges its own lane
makespan.  The batched executor instead streams fixed-size row batches
through fused operator chains, and — the part that actually moves the
cold-depot wall-clock — treats the whole query's fetch stream as one
prefetch pipeline: each scan's fetch-unit durations are *pooled* per node
(:class:`PipelineCharges`) instead of being charged per scan, and the pool
is settled once per query with :meth:`SimClock.charge_parallel`.  That
models a pipeline driver that issues the next scan's fetches while the
current scan's batches are still being decoded: lanes never drain at scan
boundaries, so a fragment with six single-file scans pays ``ceil(6 /
lanes)`` request rounds instead of six.

Demand accounting is untouched by pooling: the scheduler performs exactly
the same ``cache.get`` calls, misses, puts, coalesced groups, and S3
requests in the same order — only *when the lane makespan is charged*
changes.  That is what lets the differential suite require depot demand
stats to be bit-identical between the batched and materializing paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.storage.container import RowSet


def chunk_rows(rows: RowSet, batch_size: int) -> Iterator[RowSet]:
    """Slice ``rows`` into consecutive batches of ``batch_size`` rows.

    Always yields at least one batch: an empty input yields itself, so a
    downstream operator chain sees the (correctly-schema'd) empty batch
    rather than an empty stream.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if rows.num_rows == 0:
        yield rows
        return
    for start in range(0, rows.num_rows, batch_size):
        yield rows.slice(start, start + batch_size)


class PipelineCharges:
    """Per-node pooled fetch durations, settled once per query.

    ``add`` is called by the I/O scheduler in place of charging a batch's
    lane makespan; ``settle`` re-schedules every pooled duration onto the
    same number of lanes and returns the per-node makespans the executor
    folds into :class:`NodeWork.io_seconds`.  ``serial_seconds`` records
    what the per-scan charging would have cost, so observability can show
    the overlap won by pipelining.
    """

    def __init__(self, clock, lanes: int):
        self.clock = clock
        self.lanes = max(1, int(lanes))
        self.per_node: Dict[str, List[float]] = {}
        #: Sum of the per-batch makespans the serial path would have charged.
        self.serial_seconds = 0.0
        #: Sum of the settled per-node makespans (filled by ``settle``).
        self.pipelined_seconds = 0.0

    def add(self, node_name: str, durations: List[float], serial_makespan: float) -> None:
        if durations:
            self.per_node.setdefault(node_name, []).extend(durations)
        self.serial_seconds += serial_makespan

    def settle(self) -> Dict[str, float]:
        settled: Dict[str, float] = {}
        for name in sorted(self.per_node):
            makespan, _ = self.clock.charge_parallel(self.per_node[name], self.lanes)
            settled[name] = makespan
        self.pipelined_seconds = sum(settled.values())
        return settled


@dataclass
class EngineStats:
    """Cluster-lifetime accounting for the batched engine (the ``engine``
    section of :func:`repro.obs.metrics.cluster_metrics`)."""

    batched_queries: int = 0
    materializing_queries: int = 0
    batches: int = 0
    sip_filters: int = 0
    last_batch_size: int = 0
    #: What per-scan charging would have cost vs what pooling charged —
    #: their gap is the I/O overlap the pipeline driver won.
    io_serial_seconds: float = 0.0
    io_pipelined_seconds: float = 0.0
    #: Server-side pushdown: containers answered by select_scan and the
    #: stored bytes those selects touched, across both execution modes.
    pushdown_scans: int = 0
    bytes_scanned: int = 0

    def note(self, executor) -> None:
        """Fold one finished executor's counters in."""
        stats = getattr(executor, "stats", None)
        if stats is not None:
            self.pushdown_scans += stats.total_pushdown_scans
            self.bytes_scanned += stats.total_bytes_scanned
        if not getattr(executor, "batched", False):
            self.materializing_queries += 1
            return
        self.batched_queries += 1
        self.batches += executor.batches_emitted
        self.sip_filters += executor.sip_filters_built
        self.last_batch_size = executor.batch_size
        pipeline = executor.pipeline
        if pipeline is not None:
            self.io_serial_seconds += pipeline.serial_seconds
            self.io_pipelined_seconds += pipeline.pipelined_seconds

    @property
    def io_overlap_seconds(self) -> float:
        return max(0.0, self.io_serial_seconds - self.io_pipelined_seconds)

    def as_dict(self) -> Dict[str, object]:
        return {
            "batched_queries": self.batched_queries,
            "materializing_queries": self.materializing_queries,
            "batches": self.batches,
            "sip_filters": self.sip_filters,
            "last_batch_size": self.last_batch_size,
            "io_serial_seconds": self.io_serial_seconds,
            "io_pipelined_seconds": self.io_pipelined_seconds,
            "io_overlap_seconds": self.io_overlap_seconds,
            "pushdown_scans": self.pushdown_scans,
            "bytes_scanned": self.bytes_scanned,
        }

"""Database Designer (section 2.1): derive projections from a workload.

"Vertica has a Database Designer utility that uses the schema, some sample
data, and queries from the workload to automatically determine an
optimized set of projections."

This designer analyses a set of SELECT statements against the catalog and
proposes, per table:

* **columns** — only what the workload touches (narrow projections
  compress and scan better);
* **segmentation** — the most common equi-join key set (enabling local
  joins), or replication for small dimension tables every query joins;
* **sort order** — the columns most often range-filtered (enabling
  container/block pruning), then group-by columns (run-friendly layout).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.catalog.mvcc import CatalogState
from repro.catalog.objects import Projection, Segmentation
from repro.engine.expressions import (
    BinaryOp,
    ColumnRef,
    Expr,
    InList,
    Literal,
    extract_column_bounds,
)
from repro.errors import SqlError
from repro.sql.ast import Select
from repro.sql.binder import bind_select
from repro.sql.parser import parse

#: Tables at or below this row count are proposed as replicated.
REPLICATION_ROW_THRESHOLD = 10_000


@dataclass
class ProjectionProposal:
    """One recommended projection."""

    table: str
    columns: Tuple[str, ...]
    sort_order: Tuple[str, ...]
    segmentation: Segmentation
    reasons: List[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return f"{self.table}_dbd"

    def to_sql(self) -> str:
        cols = ", ".join(self.columns)
        order = ", ".join(self.sort_order)
        if self.segmentation.is_replicated:
            seg = "unsegmented all nodes"
        else:
            seg = f"segmented by hash({', '.join(self.segmentation.columns)})"
        return (
            f"create projection {self.name} ({cols}) as select * from "
            f"{self.table} order by {order} {seg}"
        )


@dataclass
class _TableProfile:
    columns_used: Counter = field(default_factory=Counter)
    join_key_sets: Counter = field(default_factory=Counter)  # frozenset -> hits
    filter_columns: Counter = field(default_factory=Counter)
    group_columns: Counter = field(default_factory=Counter)
    query_hits: int = 0


class DatabaseDesigner:
    """Workload-driven projection recommendation."""

    def __init__(self, catalog: CatalogState,
                 row_counts: Optional[Dict[str, int]] = None):
        self.catalog = catalog
        self.row_counts = row_counts or {}
        self._profiles: Dict[str, _TableProfile] = {}

    # -- workload ingestion -----------------------------------------------------

    def add_query(self, sql: str) -> None:
        """Analyse one SELECT; non-SELECT statements are rejected."""
        statements = parse(sql)
        for statement in statements:
            if not isinstance(statement, Select):
                raise SqlError("the designer analyses SELECT statements only")
            self._profile(bind_select(statement, self.catalog))

    def add_workload(self, queries: Sequence[str]) -> int:
        """Analyse many queries; returns how many were usable."""
        used = 0
        for sql in queries:
            try:
                self.add_query(sql)
                used += 1
            except Exception:
                continue  # skip queries the subset cannot bind
        return used

    def _profile(self, bound) -> None:
        for table in bound.tables:
            profile = self._profiles.setdefault(table, _TableProfile())
            profile.query_hits += 1
            for column in bound.columns_needed.get(table, ()):
                profile.columns_used[column] += 1
        # Join keys per table (each edge contributes to both sides).
        owner = self._column_owner(bound)
        for edge in bound.join_edges:
            left_by_table: Dict[str, Set[str]] = {}
            for key in edge.left_keys:
                left_by_table.setdefault(owner[key], set()).add(key)
            for table, keys in left_by_table.items():
                self._profiles[table].join_key_sets[frozenset(keys)] += 1
            self._profiles[edge.table].join_key_sets[
                frozenset(edge.right_keys)
            ] += 1
        # Filters: range/equality columns benefit the sort order.
        for table, predicate in bound.table_filters.items():
            for column in extract_column_bounds(predicate):
                self._profiles[table].filter_columns[column] += 1
        for name in bound.group_names:
            table = owner.get(name)
            if table is not None:
                self._profiles[table].group_columns[name] += 1

    def _column_owner(self, bound) -> Dict[str, str]:
        owner: Dict[str, str] = {}
        for table in bound.tables:
            for column in self.catalog.table(table).schema.names:
                owner[column] = table
        return owner

    # -- recommendations -----------------------------------------------------------

    def propose(self) -> List[ProjectionProposal]:
        proposals = []
        for table in sorted(self._profiles):
            proposal = self._propose_for(table)
            if proposal is not None:
                proposals.append(proposal)
        return proposals

    def _propose_for(self, table: str) -> Optional[ProjectionProposal]:
        profile = self._profiles[table]
        schema = self.catalog.table(table).schema
        if not profile.columns_used:
            return None
        reasons = []
        columns = tuple(
            c for c in schema.names if c in profile.columns_used
        )
        reasons.append(
            f"covers the {len(columns)} columns the workload reads "
            f"(of {len(schema)})"
        )

        # Segmentation: replicate small tables, else the hottest join keys.
        rows = self.row_counts.get(table)
        if rows is not None and rows <= REPLICATION_ROW_THRESHOLD:
            segmentation = Segmentation.replicated()
            reasons.append(
                f"replicated: {rows} rows fit on every node and all joins "
                "become local"
            )
        elif profile.join_key_sets:
            key_set, hits = profile.join_key_sets.most_common(1)[0]
            ordered = tuple(c for c in schema.names if c in key_set)
            segmentation = Segmentation.by_hash(*ordered)
            reasons.append(
                f"segmented by {list(ordered)}: joined on it in {hits} "
                "queries (local joins)"
            )
        else:
            anchor = columns[0]
            segmentation = Segmentation.by_hash(anchor)
            reasons.append(f"segmented by {anchor!r} (no joins observed)")

        # Sort order: filtered columns first (pruning), then group-bys.
        sort: List[str] = []
        for column, _hits in profile.filter_columns.most_common():
            if column in columns and column not in sort:
                sort.append(column)
        for column, _hits in profile.group_columns.most_common():
            if column in columns and column not in sort:
                sort.append(column)
        if not sort:
            sort = [columns[0]]
        else:
            reasons.append(
                f"sorted by {sort}: range filters prune containers and "
                "blocks"
            )
        return ProjectionProposal(
            table=table,
            columns=columns,
            sort_order=tuple(sort),
            segmentation=segmentation,
            reasons=reasons,
        )

    def apply(self, cluster) -> List[str]:
        """Create the proposed projections on a cluster; returns names."""
        created = []
        for proposal in self.propose():
            cluster.create_projection(
                proposal.name,
                proposal.table,
                list(proposal.columns),
                list(proposal.sort_order),
                proposal.segmentation,
            )
            created.append(proposal.name)
        return created

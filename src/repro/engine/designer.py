"""Database Designer v2 (section 2.1): cost-based physical design.

"Vertica has a Database Designer utility that uses the schema, some sample
data, and queries from the workload to automatically determine an
optimized set of projections."

The designer runs in two stages, echoing how the production Vertica
designer evaluates candidates *through the optimizer* rather than through
ad-hoc rules ("C-Store 7 Years Later"):

**Stage 1 — ingestion.**  Workload queries arrive either as SQL text
(:meth:`DatabaseDesigner.add_query` / :meth:`add_workload`) or straight
from the cluster's request history (:meth:`ingest_recorded`, reading the
same ``RequestRecord`` / ``QueryProfile`` stream that backs
``v_monitor.query_requests`` and ``v_monitor.query_profiles``).  Recorded
queries carry more than their text: execution counts become weights,
depot hit/miss counts become per-query cold fractions, and operator scan
strategies are kept for the proposal rationale.  Every statistic is keyed
by the **qualified** ``(table, column)`` pair taken from the binder's own
resolution — never by bare column name, which is what designer v1 got
wrong (same-named columns across tables silently overwrote each other).
Predicate selectivities come from container min/max statistics, the same
metadata the executor uses for pruning.

**Stage 2 — search.**  Per table the designer enumerates candidate
layouts — column sets (workload-only vs. full), sort orders (filtered
columns first for container pruning, then group-by columns), segmentation
(observed equi-join key sets, replication for explicitly small tables)
and per-column encoding advice — and scores complete assignments
workload-wide through the design-time estimator in
:mod:`repro.engine.cost` (cold fetches, broadcast joins, aggregation
phases, maintenance).  Small candidate spaces are searched exactly with
branch-and-bound (per-table scan terms are separable, so summing
per-table minima is a valid lower bound); large spaces fall back to
greedy coordinate descent and report the gap to that same lower bound as
a ``regret_bound``.  Framing layout selection as cost-based search
follows "Vertical partitioning of relational OLTP databases using integer
programming".

:meth:`apply` is idempotent: proposals carry versioned names
(``<table>_dbd_v<n>``), re-running a design that matches an existing
projection keeps it instead of colliding, and superseded ``_dbd``
projections are dropped in one transaction after their replacements are
in place.  Each application appends a :class:`DesignerRun` record, which
``v_monitor.designer_runs`` exposes.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.catalog.mvcc import CatalogState
from repro.catalog.objects import Projection, Segmentation
from repro.common.types import ColumnType
from repro.engine.cost import (
    DESIGN_BYTES_PER_CELL,
    DESIGN_MIN_SELECTIVITY,
    CostModel,
    DesignCost,
    DesignJoin,
    QueryShape,
    TableLayout,
    estimate_maintenance_cost,
    estimate_query_cost,
    estimate_scan_cost,
    estimate_workload_cost,
)
from repro.engine.expressions import extract_column_bounds
from repro.errors import CatalogError, PlanningError, SqlError
from repro.sql.ast import Select
from repro.sql.binder import bind_select
from repro.sql.parser import parse

#: Tables at or below this row count are proposed as replicated — only
#: when the caller states the row count explicitly (``row_counts``); a
#: sample loaded for design is not evidence the table stays small.
REPLICATION_ROW_THRESHOLD = 10_000

#: Row estimate for a table with no loaded containers and no declared
#: row count: assume it will grow, so narrow/sorted layouts pay off.
DESIGN_DEFAULT_ROW_ESTIMATE = 100_000

#: Selectivity assumed for a filtered column with no container stats.
DEFAULT_FILTER_SELECTIVITY = 0.25

#: Candidate spaces up to this many complete assignments are searched
#: exactly with branch-and-bound; larger ones go greedy.
MAX_EXHAUSTIVE_CONFIGS = 4096

#: Designer projection names: ``<table>_dbd`` (legacy v1) or
#: ``<table>_dbd_v<n>``.
_DBD_SUFFIX = re.compile(r"_dbd(?:_v(?P<version>\d+))?$")


def dbd_version(table: str, projection_name: str) -> Optional[int]:
    """Version of a designer projection of ``table`` (legacy ``_dbd`` is
    version 1), or None when the name is not a designer name."""
    if not projection_name.startswith(table):
        return None
    match = _DBD_SUFFIX.fullmatch(projection_name[len(table):])
    if match is None:
        return None
    return int(match.group("version") or 1)


def _shape_join_keys(shape: QueryShape) -> Dict[str, Set[str]]:
    """Per-table join-key columns of one query, mirroring the planner's
    ``_join_keys_by_table`` — the set its projection rank checks
    segmentations against."""
    keys: Dict[str, Set[str]] = {}
    for join in shape.joins:
        keys.setdefault(join.table, set()).update(join.right_keys)
        for table, column in join.left_keys:
            keys.setdefault(table, set()).add(column)
    return keys


@dataclass
class WorkloadReport:
    """Outcome of bulk ingestion: how many statements were usable and
    which were skipped, with the reason (so callers can report them
    instead of the designer silently eating the workload)."""

    used: int = 0
    skipped: List[Tuple[str, str]] = field(default_factory=list)


@dataclass
class ProjectionProposal:
    """One recommended projection, with its rationale."""

    table: str
    columns: Tuple[str, ...]
    sort_order: Tuple[str, ...]
    segmentation: Segmentation
    name: str
    #: Per-column encoding advice ((column, encoding), ...) — advisory:
    #: the write path picks real per-block encodings, but the advice
    #: records what the cost model assumed about the layout.
    encodings: Tuple[Tuple[str, str], ...] = ()
    reasons: List[str] = field(default_factory=list)
    #: True when an existing projection already has exactly this shape;
    #: apply() keeps it instead of creating a duplicate.
    already_applied: bool = False

    def to_sql(self) -> str:
        cols = ", ".join(self.columns)
        order = ", ".join(self.sort_order)
        if self.segmentation.is_replicated:
            seg = "unsegmented all nodes"
        else:
            seg = f"segmented by hash({', '.join(self.segmentation.columns)})"
        return (
            f"create projection {self.name} ({cols}) as select * from "
            f"{self.table} order by {order} {seg}"
        )


@dataclass
class DesignerRun:
    """Record of one ``apply()``: what the search saw, what it decided,
    and what changed on the cluster.  Surfaced as
    ``v_monitor.designer_runs``."""

    run_id: int
    at_seconds: float
    queries_used: int
    queries_skipped: int
    candidates_scored: int
    search_mode: str
    regret_bound: float
    estimated_seconds: float
    baseline_seconds: float
    estimated_s3_gets: float
    baseline_s3_gets: float
    created: Tuple[str, ...]
    dropped: Tuple[str, ...]
    kept: Tuple[str, ...]


@dataclass
class _QueryStat:
    """One distinct workload query with its recorded statistics."""

    sql: str
    bound: object
    weight: float = 1.0
    #: Weighted-mean fraction of depot misses observed for this query;
    #: None means never recorded (design for fully cold reads).
    cold_fraction: Optional[float] = None
    strategies: Counter = field(default_factory=Counter)

    def merge(self, weight: float, cold: Optional[float],
              strategies: Sequence[str]) -> None:
        if cold is not None:
            have = self.cold_fraction if self.cold_fraction is not None else cold
            total = self.weight + weight
            self.cold_fraction = (have * self.weight + cold * weight) / total
        self.weight += weight
        self.strategies.update(strategies)


@dataclass
class _TableStats:
    """Qualified per-table workload statistics (stage-1 output)."""

    columns: Counter = field(default_factory=Counter)
    filters: Counter = field(default_factory=Counter)
    groups: Counter = field(default_factory=Counter)
    join_sets: Counter = field(default_factory=Counter)  # tuple(cols) -> weight
    strategies: Counter = field(default_factory=Counter)
    query_weight: float = 0.0


@dataclass
class _Candidate:
    """One candidate layout for a table, ready to score."""

    layout: TableLayout
    encodings: Tuple[Tuple[str, str], ...] = ()
    #: Name of the existing projection this layout mirrors, if any.
    source: Optional[str] = None
    #: Separable cost (weighted scans + maintenance), filled by search.
    sep_seconds: float = math.inf
    #: Weighted share of this table's scans the planner would route to a
    #: *rival* projection instead of this candidate, filled by search.
    fallback_weight: float = 0.0


@dataclass
class _SearchResult:
    assignment: Dict[str, _Candidate]
    estimated: DesignCost
    baseline: DesignCost
    mode: str
    regret_bound: float
    candidates_scored: int


class DatabaseDesigner:
    """Workload-driven, cost-based projection recommendation."""

    def __init__(self, catalog: CatalogState,
                 row_counts: Optional[Dict[str, int]] = None,
                 extra_states: Optional[Sequence[CatalogState]] = None):
        self.catalog = catalog
        self.row_counts = row_counts or {}
        #: Catalog states consulted for container statistics (row counts,
        #: min/max extents).  One node's state only covers its subscribed
        #: shards, so :meth:`for_cluster` passes every up node's state.
        self._states: List[CatalogState] = [catalog] + list(extra_states or [])
        self._queries: Dict[str, _QueryStat] = {}
        self._extent_cache: Dict[str, Dict[str, Tuple[float, float]]] = {}
        self._row_cache: Dict[str, int] = {}
        self._last_search: Optional[_SearchResult] = None
        self._last_report: Optional[WorkloadReport] = None
        self._stats_cache: Dict[str, _TableStats] = {}

    @classmethod
    def for_cluster(cls, cluster,
                    row_counts: Optional[Dict[str, int]] = None
                    ) -> "DatabaseDesigner":
        """Build a designer over a live cluster's catalog, pooling
        container statistics across every up node (a single node's state
        only sees its subscribed shards)."""
        states = _cluster_states(cluster)
        return cls(states[0], row_counts=row_counts, extra_states=states[1:])

    # -- stage 1: workload ingestion -------------------------------------------

    def add_query(self, sql: str, weight: float = 1.0,
                  cold_fraction: Optional[float] = None,
                  scan_strategies: Sequence[str] = ()) -> None:
        """Analyse one SELECT; non-SELECT statements are rejected."""
        statements = parse(sql)
        for index, statement in enumerate(statements):
            if not isinstance(statement, Select):
                raise SqlError("the designer analyses SELECT statements only")
            bound = bind_select(statement, self.catalog)
            key = " ".join(sql.split())
            if len(statements) > 1:
                key = f"{key}#{index}"
            stat = self._queries.get(key)
            if stat is None:
                self._queries[key] = _QueryStat(
                    sql=key, bound=bound, weight=weight,
                    cold_fraction=cold_fraction,
                    strategies=Counter(scan_strategies),
                )
            else:
                stat.merge(weight, cold_fraction, scan_strategies)

    def add_workload(self, queries: Sequence[str]) -> WorkloadReport:
        """Analyse many queries.  Statements the designer cannot use are
        collected (with the reason) instead of silently dropped; only
        SQL-level errors are caught — a genuine designer defect still
        raises."""
        report = WorkloadReport()
        for sql in queries:
            try:
                self.add_query(sql)
                report.used += 1
            except (SqlError, PlanningError, CatalogError) as exc:
                report.skipped.append((sql, str(exc)))
        self._last_report = report
        return report

    def ingest_recorded(self, cluster, limit: Optional[int] = None
                        ) -> WorkloadReport:
        """Pull the workload from the cluster's request history (the
        stream behind ``v_monitor.query_requests`` /
        ``v_monitor.query_profiles``): repeated queries gain weight,
        depot hit/miss counts become per-query cold fractions, and
        operator scan strategies are recorded for the rationale."""
        report = WorkloadReport()
        obs = getattr(cluster, "obs", None)
        records = list(getattr(obs, "requests", ()) or ())
        if limit is not None:
            records = records[-limit:]
        profiles = {}
        for profile in getattr(obs, "profiles", ()) or ():
            profiles[profile.request_id] = profile
        for record in records:
            sql = (record.request or "").strip()
            if not sql or "v_monitor." in sql:
                continue  # monitoring reads are not the workload
            try:
                statements = parse(sql)
            except SqlError:
                continue
            if len(statements) != 1 or not isinstance(statements[0], Select):
                continue  # DML/DDL shape the data, not the layout
            touched = record.depot_hits + record.depot_misses
            cold = (record.depot_misses / touched) if touched else None
            strategies = []
            profile = profiles.get(record.request_id)
            if profile is not None:
                strategies = [
                    op.scan_strategy
                    for op in profile.operators
                    if getattr(op, "scan_strategy", "")
                ]
            try:
                self.add_query(sql, cold_fraction=cold,
                               scan_strategies=strategies)
                report.used += 1
            except (SqlError, PlanningError, CatalogError) as exc:
                report.skipped.append((sql, str(exc)))
        self._last_report = report
        return report

    # -- qualified attribution (the v1 bare-name bug, fixed) -------------------

    def _owner_map(self, bound) -> Dict[str, str]:
        """Bare column name -> owning table, derived from the *binder's*
        resolution (``columns_needed``) rather than from raw schemas.
        A name the binder attributed to two tables is dropped entirely:
        better no statistic than one credited to the wrong table."""
        owner: Dict[str, str] = {}
        ambiguous = set()
        for table in sorted(bound.columns_needed):
            for column in bound.columns_needed[table]:
                if owner.get(column, table) != table:
                    ambiguous.add(column)
                owner[column] = table
        for column in ambiguous:
            owner.pop(column, None)
        return owner

    def _shape_for(self, stat: _QueryStat) -> QueryShape:
        bound = stat.bound
        owner = self._owner_map(bound)
        columns = {}
        for table in bound.tables:
            schema = self.catalog.table(table).schema
            needed = bound.columns_needed.get(table, set())
            columns[table] = tuple(c for c in schema.names if c in needed)
        filters: Dict[str, Dict[str, float]] = {}
        for table, predicate in bound.table_filters.items():
            bounds = extract_column_bounds(predicate)
            selectivities = {
                column: self._selectivity(table, column, lo_hi)
                for column, lo_hi in bounds.items()
            }
            if selectivities:
                filters[table] = selectivities
        joins = []
        for edge in bound.join_edges:
            qualified = []
            for key in edge.left_keys:
                table = owner.get(key)
                if table is None:
                    qualified = None
                    break
                qualified.append((table, key))
            if qualified is None:
                continue
            joins.append(DesignJoin(
                table=edge.table,
                left_keys=tuple(qualified),
                right_keys=tuple(edge.right_keys),
            ))
        group_columns = tuple(
            (owner[name], name)
            for name in bound.group_names
            if name in owner
        )
        return QueryShape(
            tables=tuple(bound.tables),
            columns=columns,
            filters=filters,
            joins=tuple(joins),
            group_columns=group_columns,
            is_aggregate=bound.is_aggregate,
            weight=stat.weight,
            cold_fraction=(
                stat.cold_fraction if stat.cold_fraction is not None else 1.0
            ),
        )

    def _build(self) -> Tuple[List[QueryShape], Dict[str, _TableStats]]:
        shapes: List[QueryShape] = []
        stats: Dict[str, _TableStats] = {}
        for key in sorted(self._queries):
            stat = self._queries[key]
            shape = self._shape_for(stat)
            shapes.append(shape)
            for table in shape.tables:
                entry = stats.setdefault(table, _TableStats())
                entry.query_weight += shape.weight
                entry.strategies.update(stat.strategies)
                for column in shape.columns[table]:
                    entry.columns[column] += shape.weight
                for column in shape.filters.get(table, {}):
                    entry.filters[column] += shape.weight
            for table, column in shape.group_columns:
                stats[table].groups[column] += shape.weight
            for join in shape.joins:
                stats[join.table].join_sets[
                    tuple(sorted(join.right_keys))
                ] += shape.weight
                by_table: Dict[str, List[str]] = {}
                for table, column in join.left_keys:
                    by_table.setdefault(table, []).append(column)
                for table, cols in by_table.items():
                    stats[table].join_sets[tuple(sorted(cols))] += shape.weight
        return shapes, stats

    # -- container statistics --------------------------------------------------

    def _estimate_rows(self, table: str) -> int:
        if table in self.row_counts:
            return self.row_counts[table]
        cached = self._row_cache.get(table)
        if cached is not None:
            return cached
        per_projection: Dict[str, int] = {}
        seen = set()
        for state in self._states:
            for projection in state.projections_of(table):
                if projection.is_buddy:
                    continue
                for container in state.containers_of(projection.name):
                    key = (projection.name, str(container.sid))
                    if key in seen:
                        continue
                    seen.add(key)
                    per_projection[projection.name] = (
                        per_projection.get(projection.name, 0)
                        + container.row_count
                    )
        rows = max(per_projection.values(), default=0)
        rows = rows or DESIGN_DEFAULT_ROW_ESTIMATE
        self._row_cache[table] = rows
        return rows

    def _extents(self, table: str) -> Dict[str, Tuple[float, float]]:
        """Per-column (min, max) pooled over up to 64 containers of the
        table's projections — the same min/max metadata pruning uses."""
        cached = self._extent_cache.get(table)
        if cached is not None:
            return cached
        extents: Dict[str, Tuple[float, float]] = {}
        seen = set()
        for state in self._states:
            for projection in sorted(
                state.projections_of(table), key=lambda p: p.name
            ):
                if projection.is_buddy:
                    continue
                for container in sorted(
                    state.containers_of(projection.name),
                    key=lambda c: str(c.sid),
                ):
                    if str(container.sid) in seen or len(seen) >= 64:
                        continue
                    seen.add(str(container.sid))
                    for column in projection.columns:
                        lo, hi = container.min_of(column), container.max_of(column)
                        if not isinstance(lo, (int, float)) or not isinstance(
                            hi, (int, float)
                        ) or isinstance(lo, bool) or isinstance(hi, bool):
                            continue
                        old = extents.get(column)
                        if old is None:
                            extents[column] = (float(lo), float(hi))
                        else:
                            extents[column] = (
                                min(old[0], float(lo)), max(old[1], float(hi))
                            )
        self._extent_cache[table] = extents
        return extents

    def _selectivity(self, table: str, column: str, lo_hi: tuple) -> float:
        lo, hi = lo_hi
        extent = self._extents(table).get(column)
        rows = max(1, self._estimate_rows(table))
        floor = max(DESIGN_MIN_SELECTIVITY, 1.0 / rows)
        if extent is None:
            return DEFAULT_FILTER_SELECTIVITY
        column_min, column_max = extent
        try:
            lo_f = float(lo) if lo is not None else column_min
            hi_f = float(hi) if hi is not None else column_max
        except (TypeError, ValueError):
            return DEFAULT_FILTER_SELECTIVITY
        span = column_max - column_min
        if span <= 0:
            return 1.0 if lo_f <= column_min <= hi_f else floor
        if lo_f == hi_f:
            # Equality: about one distinct value out of the span.
            if column_min <= lo_f <= column_max:
                return max(floor, 1.0 / (span + 1.0))
            return floor
        overlap = max(0.0, min(hi_f, column_max) - max(lo_f, column_min))
        return max(floor, min(1.0, overlap / span))

    # -- stage 2: candidate enumeration ----------------------------------------

    def _bytes_per_cell(self, table: str) -> Dict[str, float]:
        schema = self.catalog.table(table).schema
        return {
            column.name: DESIGN_BYTES_PER_CELL.get(column.ctype.value, 8.0)
            for column in schema.columns
        }

    def _encodings_for(self, table: str, columns: Tuple[str, ...],
                       sort_order: Tuple[str, ...]) -> Tuple[Tuple[str, str], ...]:
        schema = self.catalog.table(table).schema
        advice = []
        for column in columns:
            ctype = schema.column(column).ctype
            if sort_order and column == sort_order[0]:
                enc = "delta" if ctype in (ColumnType.INT, ColumnType.DATE) else "rle"
            elif column in sort_order:
                enc = "delta" if ctype in (ColumnType.INT, ColumnType.DATE) else "rle"
            elif ctype is ColumnType.VARCHAR:
                enc = "dict"
            elif ctype is ColumnType.BOOL:
                enc = "rle"
            else:
                enc = "plain"
            advice.append((column, enc))
        return tuple(advice)

    def _ranked(self, counter: Counter, schema_names: Sequence[str]
                ) -> List[str]:
        index = {name: i for i, name in enumerate(schema_names)}
        return sorted(
            counter,
            key=lambda c: (-counter[c], index.get(c, len(index))),
        )

    def _candidates_for(self, table: str, stats: _TableStats
                        ) -> List[_Candidate]:
        schema = self.catalog.table(table).schema
        cells = self._bytes_per_cell(table)
        rows = self._estimate_rows(table)
        used = tuple(c for c in schema.names if stats.columns.get(c))
        if not used:
            # Touched but no columns read (e.g. bare count(*)): the
            # narrowest possible layout serves it.
            used = (schema.names[0],)
        column_sets = [used]
        full = tuple(schema.names)
        if full != used:
            column_sets.append(full)

        ranked_filters = self._ranked(stats.filters, schema.names)
        ranked_groups = self._ranked(stats.groups, schema.names)
        leads = []
        for column in ranked_filters[:2] + ranked_groups[:1]:
            if column not in leads:
                leads.append(column)

        declared_rows = self.row_counts.get(table)
        replicate_ok = (
            declared_rows is not None
            and declared_rows <= REPLICATION_ROW_THRESHOLD
        )

        seen: Dict[tuple, _Candidate] = {}

        def add(columns: Tuple[str, ...], sort: Tuple[str, ...],
                seg: Tuple[str, ...], source: Optional[str] = None) -> None:
            key = (columns, sort, seg)
            if key in seen:
                if source is not None and seen[key].source is None:
                    seen[key].source = source
                return
            seen[key] = _Candidate(
                layout=TableLayout(
                    table=table, columns=columns, sort_order=sort,
                    segmentation_columns=seg, row_count=rows,
                    bytes_per_cell=cells,
                ),
                encodings=self._encodings_for(table, columns, sort),
                source=source,
            )

        for columns in column_sets:
            column_set = set(columns)
            sorts: List[Tuple[str, ...]] = []
            for lead in [c for c in leads if c in column_set] or [columns[0]]:
                order = [lead]
                for column in ranked_filters + ranked_groups:
                    if len(order) >= 3:
                        break
                    if column in column_set and column not in order:
                        order.append(column)
                if tuple(order) not in sorts:
                    sorts.append(tuple(order))
            segmentations: List[Tuple[str, ...]] = []
            if replicate_ok:
                # Declared-small tables are replicated by policy; ties in
                # the cost model then keep replication (generation order
                # breaks ties), and a big-table mistake still loses on
                # the single-participant scan penalty.
                segmentations.append(())
            for key_set, _weight in stats.join_sets.most_common():
                ordered = tuple(c for c in schema.names if c in key_set)
                if (
                    ordered
                    and set(ordered) <= column_set
                    and ordered not in segmentations
                ):
                    segmentations.append(ordered)
                if len(segmentations) >= 3:
                    break
            if not any(seg for seg in segmentations) and not replicate_ok:
                segmentations.append((columns[0],))
            for sort in sorts:
                for seg in segmentations:
                    add(columns, sort, seg)

        # Existing covering projections are always candidates: the search
        # can never do worse than what the cluster already has, and a
        # winner that matches one becomes "already applied".
        for projection in sorted(
            self.catalog.projections_of(table), key=lambda p: p.name
        ):
            if projection.is_buddy:
                continue
            if set(used) <= set(projection.columns):
                seg = (
                    ()
                    if projection.segmentation.is_replicated
                    else tuple(projection.segmentation.columns)
                )
                add(
                    tuple(projection.columns),
                    tuple(projection.sort_order),
                    seg,
                    source=projection.name,
                )
        return list(seen.values())

    # -- stage 2: search -------------------------------------------------------

    def _rival_layouts(self, table: str) -> List[Tuple[str, TableLayout]]:
        """Existing projections a candidate must *beat in the planner* to
        be scanned at all: every non-buddy projection that survives an
        apply.  The table's own ``_dbd`` versions are excluded — a new
        version supersedes and drops them."""
        cells = self._bytes_per_cell(table)
        rows = self._estimate_rows(table)
        rivals = []
        for projection in sorted(
            self.catalog.projections_of(table), key=lambda p: p.name
        ):
            if projection.is_buddy:
                continue
            if dbd_version(table, projection.name) is not None:
                continue
            seg = (
                ()
                if projection.segmentation.is_replicated
                else tuple(projection.segmentation.columns)
            )
            rivals.append((projection.name, TableLayout(
                table=table, columns=tuple(projection.columns),
                sort_order=tuple(projection.sort_order),
                segmentation_columns=seg, row_count=rows,
                bytes_per_cell=cells,
            )))
        return rivals

    def _node_count(self) -> int:
        nodes = {node for (node, _shard) in self.catalog.subscriptions}
        return max(1, len(nodes) or len(self._states))

    def _baseline_layouts(self, tables: Sequence[str],
                          stats: Dict[str, _TableStats]
                          ) -> Dict[str, TableLayout]:
        """What the workload runs on today: per table, the narrowest
        existing projection covering its scanned columns (the super
        projection when nothing narrower exists)."""
        layouts = {}
        for table in tables:
            schema = self.catalog.table(table).schema
            used = {c for c in schema.names if stats[table].columns.get(c)}
            best: Optional[Projection] = None
            for projection in sorted(
                self.catalog.projections_of(table), key=lambda p: p.name
            ):
                if projection.is_buddy or not used <= set(projection.columns):
                    continue
                if best is None or len(projection.columns) < len(best.columns):
                    best = projection
            if best is not None:
                seg = (
                    ()
                    if best.segmentation.is_replicated
                    else tuple(best.segmentation.columns)
                )
                layouts[table] = TableLayout(
                    table=table, columns=tuple(best.columns),
                    sort_order=tuple(best.sort_order),
                    segmentation_columns=seg,
                    row_count=self._estimate_rows(table),
                    bytes_per_cell=self._bytes_per_cell(table),
                )
            else:
                layouts[table] = TableLayout(
                    table=table, columns=tuple(schema.names),
                    sort_order=(schema.names[0],),
                    segmentation_columns=(schema.names[0],),
                    row_count=self._estimate_rows(table),
                    bytes_per_cell=self._bytes_per_cell(table),
                )
        return layouts

    def _search(self, shapes: List[QueryShape],
                candidates: Dict[str, List[_Candidate]]) -> _SearchResult:
        node_count = self._node_count()
        model = CostModel()
        tables = sorted(candidates)
        rivals = {table: self._rival_layouts(table) for table in tables}
        shape_keys = [_shape_join_keys(shape) for shape in shapes]

        def effective(index: int, shape: QueryShape, table: str,
                      layout: TableLayout) -> Optional[TableLayout]:
            """The layout the *planner* will actually scan for this query:
            the candidate competes with the projections that survive an
            apply, under the planner's own rank — local (co-segmented with
            the query's join keys, or replicated) first, then narrowest.
            Scoring the planner's pick rather than the candidate is what
            makes the search optimizer-grade: a layout the planner would
            ignore scores exactly like not creating it, and a candidate
            that only covers part of the workload is charged the true cost
            of the other queries falling back to a wider projection."""
            needed = set(shape.columns.get(table, ()))
            join_keys = shape_keys[index].get(table, set())

            def rank(name: str, lt: TableLayout, rival: int) -> tuple:
                seg = set(lt.segmentation_columns)
                local = lt.is_replicated or (bool(seg) and seg <= join_keys)
                return (0 if local else 1, len(lt.columns), rival, name)

            best: Optional[TableLayout] = None
            best_rank: Optional[tuple] = None
            if needed <= set(layout.columns):
                best, best_rank = layout, rank("", layout, 0)
            for name, alternative in rivals[table]:
                if not needed <= set(alternative.columns):
                    continue
                contender = rank(name, alternative, 1)
                if best_rank is None or contender < best_rank:
                    best, best_rank = alternative, contender
            return best

        # Separable per-candidate cost: weighted scans (through the
        # planner's pick) + maintenance.  Infeasible candidates (no layout
        # can serve a scan) drop out here.
        for table in tables:
            kept = []
            for candidate in candidates[table]:
                total = estimate_maintenance_cost(candidate.layout).seconds
                fallback = 0.0
                feasible = True
                for index, shape in enumerate(shapes):
                    if table not in shape.tables:
                        continue
                    layout = effective(index, shape, table, candidate.layout)
                    scan = (
                        estimate_scan_cost(
                            shape, table, layout, node_count, model
                        )
                        if layout is not None else None
                    )
                    if scan is None:
                        feasible = False
                        break
                    if layout is not candidate.layout:
                        fallback += shape.weight
                    total += shape.weight * scan.seconds
                if feasible:
                    candidate.sep_seconds = total
                    candidate.fallback_weight = fallback
                    kept.append(candidate)
            # Traffic concentration: among cost-tied candidates prefer the
            # one the planner routes the *most* weighted scans to.  Every
            # rival projection a query falls back to adds its containers
            # to the depot working set, and a split working set is what a
            # small depot cannot keep warm.  Stable sort keeps generation
            # order (replication for declared-small tables, then join-key
            # segmentations) as the final tie-break.
            kept.sort(key=lambda c: (c.sep_seconds, c.fallback_weight))
            candidates[table] = kept

        candidates_scored = sum(len(candidates[t]) for t in tables)
        lower = {
            table: candidates[table][0].sep_seconds if candidates[table]
            else math.inf
            for table in tables
        }
        dispatch_const = sum(s.weight for s in shapes) * model.dispatch_seconds
        lower_total = sum(lower.values()) + dispatch_const

        def full_cost(assign: Dict[str, _Candidate]) -> DesignCost:
            total = DesignCost()
            for index, shape in enumerate(shapes):
                layouts: Dict[str, TableLayout] = {}
                for shape_table in shape.tables:
                    chosen = assign.get(shape_table)
                    layout = (
                        effective(index, shape, shape_table, chosen.layout)
                        if chosen is not None else None
                    )
                    if layout is None:
                        return DesignCost(seconds=math.inf)
                    layouts[shape_table] = layout
                query = estimate_query_cost(shape, layouts, node_count, model)
                if query is None:
                    return DesignCost(seconds=math.inf)
                total.add(query, weight=shape.weight)
            for assigned_table in sorted(assign):
                total.add(
                    estimate_maintenance_cost(assign[assigned_table].layout)
                )
            return total

        assignment = {
            table: candidates[table][0] for table in tables if candidates[table]
        }
        if len(assignment) != len(tables):
            # Some table has no feasible candidate (cannot happen while
            # generation includes the full schema, but stay safe).
            empty = DesignCost(seconds=math.inf)
            return _SearchResult(assignment, empty, empty, "infeasible",
                                 math.inf, candidates_scored)
        best_cost = full_cost(assignment)
        best_assign = dict(assignment)

        configs = 1
        for table in tables:
            configs *= max(1, len(candidates[table]))

        if configs <= MAX_EXHAUSTIVE_CONFIGS:
            mode = "branch-and-bound"
            suffix_lb = [0.0] * (len(tables) + 1)
            for i in range(len(tables) - 1, -1, -1):
                suffix_lb[i] = suffix_lb[i + 1] + lower[tables[i]]

            partial: Dict[str, _Candidate] = {}

            def descend(i: int, partial_sep: float) -> None:
                nonlocal best_cost, best_assign
                if i == len(tables):
                    cost = full_cost(partial)
                    # Strictly-better only: a cost tie keeps the earlier
                    # assignment, and candidate order already prefers
                    # concentrated traffic.
                    if cost.seconds < best_cost.seconds - 1e-12:
                        best_cost, best_assign = cost, dict(partial)
                    return
                table = tables[i]
                for candidate in candidates[table]:
                    bound = (
                        partial_sep + candidate.sep_seconds
                        + suffix_lb[i + 1] + dispatch_const
                    )
                    if bound >= best_cost.seconds:
                        break  # candidates sorted by sep: rest only worse
                    partial[table] = candidate
                    descend(i + 1, partial_sep + candidate.sep_seconds)
                partial.pop(table, None)

            descend(0, 0.0)
            regret = 0.0
        else:
            mode = "greedy"
            for _pass in range(4):
                changed = False
                for table in tables:
                    for candidate in candidates[table]:
                        if candidate is best_assign[table]:
                            continue
                        trial = dict(best_assign)
                        trial[table] = candidate
                        cost = full_cost(trial)
                        if cost.seconds < best_cost.seconds - 1e-12:
                            best_cost, best_assign = cost, trial
                            changed = True
                if not changed:
                    break
            regret = max(0.0, best_cost.seconds - lower_total)

        _shapes_tables = {t for s in shapes for t in s.tables}
        baseline = estimate_workload_cost(
            shapes,
            self._baseline_layouts(sorted(_shapes_tables), self._stats_cache),
            node_count, model,
        ) or DesignCost(seconds=math.inf)
        return _SearchResult(best_assign, best_cost, baseline, mode, regret,
                             candidates_scored)

    # -- proposals -------------------------------------------------------------

    def propose(self) -> List[ProjectionProposal]:
        shapes, stats = self._build()
        self._stats_cache = stats
        if not shapes:
            self._last_search = None
            return []
        candidates = {
            table: self._candidates_for(table, stats[table])
            for table in sorted(stats)
        }
        candidates = {t: c for t, c in candidates.items() if c}
        if not candidates:
            self._last_search = None
            return []
        search = self._search(shapes, candidates)
        self._last_search = search
        proposals = []
        for table in sorted(search.assignment):
            proposals.append(
                self._proposal_for(table, search.assignment[table],
                                   stats[table], search)
            )
        return proposals

    def _proposal_for(self, table: str, candidate: _Candidate,
                      stats: _TableStats, search: _SearchResult
                      ) -> ProjectionProposal:
        layout = candidate.layout
        schema = self.catalog.table(table).schema
        segmentation = (
            Segmentation.replicated()
            if layout.is_replicated
            else Segmentation.by_hash(*layout.segmentation_columns)
        )
        match = self._matching_projection(table, layout)
        if match is not None:
            name = match.name
        else:
            name = f"{table}_dbd_v{self._next_version(table)}"
        reasons = [
            f"covers the {len(layout.columns)} columns the workload reads "
            f"(of {len(schema)})"
        ]
        if layout.is_replicated:
            reasons.append(
                f"replicated: {self._estimate_rows(table)} rows fit on "
                "every node and all joins become local"
            )
        elif stats.join_sets:
            reasons.append(
                f"segmented by {list(layout.segmentation_columns)}: "
                "co-locates the workload's join keys (local joins)"
            )
        else:
            reasons.append(
                f"segmented by {layout.segmentation_columns[0]!r} "
                "(no joins observed)"
            )
        if any(c in stats.filters or c in stats.groups
               for c in layout.sort_order):
            reasons.append(
                f"sorted by {list(layout.sort_order)}: range filters prune "
                "containers and blocks"
            )
        reasons.append(
            f"scored {search.estimated.seconds:.4f}s (est.) vs baseline "
            f"{search.baseline.seconds:.4f}s over the weighted workload "
            f"({search.mode} search)"
        )
        if stats.strategies:
            observed = ", ".join(
                f"{name}x{count}"
                for name, count in sorted(stats.strategies.items())
            )
            reasons.append(f"observed scan strategies: {observed}")
        if match is not None:
            reasons.append(
                f"existing projection {match.name!r} already has this "
                "layout; apply keeps it"
            )
        return ProjectionProposal(
            table=table,
            columns=layout.columns,
            sort_order=layout.sort_order,
            segmentation=segmentation,
            name=name,
            encodings=candidate.encodings,
            reasons=reasons,
            already_applied=match is not None,
        )

    def _matching_projection(self, table: str,
                             layout: TableLayout) -> Optional[Projection]:
        for projection in sorted(
            self.catalog.projections_of(table), key=lambda p: p.name
        ):
            if projection.is_buddy:
                continue
            seg = (
                ()
                if projection.segmentation.is_replicated
                else tuple(projection.segmentation.columns)
            )
            if (
                tuple(projection.columns) == layout.columns
                and tuple(projection.sort_order) == layout.sort_order
                and seg == layout.segmentation_columns
            ):
                return projection
        return None

    def _next_version(self, table: str) -> int:
        versions = [
            dbd_version(table, p.name)
            for p in self.catalog.projections_of(table)
        ]
        return max([v for v in versions if v is not None], default=0) + 1

    # -- application -----------------------------------------------------------

    def apply(self, cluster) -> DesignerRun:
        """Create the winning projections, drop superseded ``_dbd``
        versions, and record the run.  Idempotent: a proposal matching an
        existing projection is kept, never recreated, so re-running the
        same design is a no-op that still logs a :class:`DesignerRun`."""
        proposals = self.propose()
        created: List[str] = []
        kept: List[str] = []
        state = _cluster_states(cluster)[0]
        for proposal in proposals:
            if proposal.already_applied or proposal.name in state.projections:
                kept.append(proposal.name)
                continue
            cluster.create_projection(
                proposal.name,
                proposal.table,
                list(proposal.columns),
                list(proposal.sort_order),
                proposal.segmentation,
            )
            created.append(proposal.name)
        # Superseded designer projections: every _dbd of a designed table
        # other than the one this run decided on.  Dropped after the
        # replacements are in place, in one transaction.
        state = _cluster_states(cluster)[0]
        stale = set()
        for proposal in proposals:
            for projection in state.projections_of(proposal.table):
                if projection.is_buddy or projection.name == proposal.name:
                    continue
                if dbd_version(proposal.table, projection.name) is not None:
                    stale.add(projection.name)
        dropped = tuple(sorted(stale))
        if dropped:
            cluster.drop_projections(list(dropped))
        search = self._last_search
        report = self._last_report
        runs = getattr(cluster, "designer_runs", None)
        if runs is None:
            runs = []
            setattr(cluster, "designer_runs", runs)
        clock = getattr(cluster, "clock", None)
        run = DesignerRun(
            run_id=len(runs) + 1,
            at_seconds=float(getattr(clock, "now", 0.0)),
            queries_used=len(self._queries),
            queries_skipped=len(report.skipped) if report else 0,
            candidates_scored=search.candidates_scored if search else 0,
            search_mode=search.mode if search else "empty",
            regret_bound=search.regret_bound if search else 0.0,
            estimated_seconds=search.estimated.seconds if search else 0.0,
            baseline_seconds=search.baseline.seconds if search else 0.0,
            estimated_s3_gets=search.estimated.s3_gets if search else 0.0,
            baseline_s3_gets=search.baseline.s3_gets if search else 0.0,
            created=tuple(created),
            dropped=dropped,
            kept=tuple(kept),
        )
        runs.append(run)
        return run


class FrequencyDesigner(DatabaseDesigner):
    """The v1 heuristic, kept as a benchmark rival: pick the most common
    join-key set and sort by raw filter frequency (``Counter.most_common``
    instead of cost-based search).  Shares v2's qualified ingestion and
    idempotent apply, so benchmarks compare *search quality* alone."""

    def _search(self, shapes: List[QueryShape],
                candidates: Dict[str, List[_Candidate]]) -> _SearchResult:
        node_count = self._node_count()
        assignment: Dict[str, _Candidate] = {}
        for table in sorted(candidates):
            stats = self._stats_cache[table]
            schema = self.catalog.table(table).schema
            used = tuple(c for c in schema.names if stats.columns.get(c))
            if not used:
                used = (schema.names[0],)
            declared = self.row_counts.get(table)
            if declared is not None and declared <= REPLICATION_ROW_THRESHOLD:
                seg: Tuple[str, ...] = ()
            elif stats.join_sets:
                key_set, _hits = stats.join_sets.most_common(1)[0]
                seg = tuple(c for c in schema.names if c in key_set)
            else:
                seg = (used[0],)
            sort: List[str] = []
            for column, _hits in stats.filters.most_common():
                if column in used and column not in sort:
                    sort.append(column)
            for column, _hits in stats.groups.most_common():
                if column in used and column not in sort:
                    sort.append(column)
            if not sort:
                sort = [used[0]]
            layout = TableLayout(
                table=table, columns=used, sort_order=tuple(sort),
                segmentation_columns=seg,
                row_count=self._estimate_rows(table),
                bytes_per_cell=self._bytes_per_cell(table),
            )
            assignment[table] = _Candidate(
                layout=layout,
                encodings=self._encodings_for(table, used, tuple(sort)),
            )
        layouts = {t: c.layout for t, c in assignment.items()}
        estimated = estimate_workload_cost(
            shapes, layouts, node_count
        ) or DesignCost(seconds=math.inf)
        baseline = estimate_workload_cost(
            shapes,
            self._baseline_layouts(sorted(layouts), self._stats_cache),
            node_count,
        ) or DesignCost(seconds=math.inf)
        return _SearchResult(assignment, estimated, baseline, "frequency",
                             math.inf, len(assignment))


def _cluster_states(cluster) -> List[CatalogState]:
    """Catalog states of every up node (Eon) or the single shared
    catalog (Enterprise), primary first."""
    nodes = getattr(cluster, "nodes", None)
    if isinstance(nodes, dict):
        states = [
            node.catalog.state
            for node in nodes.values()
            if getattr(node, "is_up", False)
        ]
        if states:
            return states
    return [cluster.catalog.state]

"""Physical plan nodes.

A plan is a tree executed bottom-up.  Distribution is encoded in node
attributes set by the planner:

* ``ScanNode`` reads one projection's containers for the shards a
  participating node serves;
* ``JoinNode.locality`` is ``"local"`` when both inputs are co-located
  per-node (co-segmented on the join keys, or the build side is
  replicated), else ``"broadcast"`` — the build side is gathered once and
  shipped to every participant;
* ``AggregateNode.strategy`` is ``"one_phase"`` when group keys contain the
  segmentation columns (groups cannot span nodes), else ``"two_phase"``
  (partial per node, final merge on the initiator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.engine.expressions import Expr
from repro.engine.operators import AggregateSpec


@dataclass
class PlanNode:
    """Base plan node; children listed explicitly in subclasses."""

    def children(self) -> List["PlanNode"]:
        return []

    def describe(self, indent: int = 0) -> str:
        lines = ["  " * indent + self._label()]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__


@dataclass
class ScanNode(PlanNode):
    table: str
    projection: str
    columns: Tuple[str, ...]
    predicate: Optional[Expr] = None
    #: True when the projection is replicated — only one participant scans.
    replicated: bool = False
    #: Set by the planner when this scan is a candidate for server-side
    #: pushdown (selective bounded predicate, or a SIP filter will arrive);
    #: the per-container strategy decision still rests with the cost model.
    pushdown_eligible: bool = False

    def _label(self) -> str:
        pred = f" filter={self.predicate!r}" if self.predicate is not None else ""
        rep = " replicated" if self.replicated else ""
        push = " pushdown-eligible" if self.pushdown_eligible else ""
        return (
            f"Scan {self.table} via {self.projection} "
            f"cols={list(self.columns)}{pred}{rep}{push}"
        )


@dataclass
class FilterNode(PlanNode):
    child: PlanNode
    predicate: Expr

    def children(self) -> List[PlanNode]:
        return [self.child]

    def _label(self) -> str:
        return f"Filter {self.predicate!r}"


@dataclass
class ProjectNode(PlanNode):
    child: PlanNode
    outputs: Tuple[Tuple[str, Expr], ...]  # (name, expression)

    def children(self) -> List[PlanNode]:
        return [self.child]

    def _label(self) -> str:
        return f"Project {[name for name, _ in self.outputs]}"


@dataclass
class JoinNode(PlanNode):
    left: PlanNode
    right: PlanNode
    left_keys: Tuple[str, ...]
    right_keys: Tuple[str, ...]
    how: str = "inner"
    locality: str = "local"  # "local" | "broadcast"
    #: SIP (sideways information passing) target, resolved at plan time:
    #: the probe-spine ScanNode producing the probe key (and the key's name
    #: at that scan), when the key traces to a base column.  The batched
    #: executor pushes an IN-list built from the join's build side into
    #: that scan's predicate.
    sip_scan: Optional[ScanNode] = None
    sip_column: Optional[str] = None

    def children(self) -> List[PlanNode]:
        return [self.left, self.right]

    def _label(self) -> str:
        sip = f" sip={self.sip_column}" if self.sip_scan is not None else ""
        return (
            f"Join {self.how} on {list(self.left_keys)}={list(self.right_keys)} "
            f"[{self.locality}]{sip}"
        )


@dataclass
class AggregateNode(PlanNode):
    child: PlanNode
    group_names: Tuple[str, ...]
    specs: Tuple[AggregateSpec, ...]
    strategy: str = "two_phase"  # "one_phase" | "two_phase"

    def children(self) -> List[PlanNode]:
        return [self.child]

    def _label(self) -> str:
        return (
            f"Aggregate by {list(self.group_names)} "
            f"{[s.output for s in self.specs]} [{self.strategy}]"
        )


@dataclass
class SortNode(PlanNode):
    child: PlanNode
    order: Tuple[Tuple[str, bool], ...]  # (column, ascending)

    def children(self) -> List[PlanNode]:
        return [self.child]

    def _label(self) -> str:
        return f"Sort {list(self.order)}"


@dataclass
class LimitNode(PlanNode):
    child: PlanNode
    limit: Optional[int]
    offset: int = 0

    def children(self) -> List[PlanNode]:
        return [self.child]

    def _label(self) -> str:
        suffix = f" offset {self.offset}" if self.offset else ""
        return f"Limit {self.limit}{suffix}"


def walk(plan: PlanNode):
    """Pre-order traversal of a plan tree."""
    yield plan
    for child in plan.children():
        yield from walk(child)


def has_node(plan: PlanNode, node_type: type) -> bool:
    return any(isinstance(n, node_type) for n in walk(plan))


def probe_spine_scan(
    node: PlanNode, key: str
) -> Tuple[Optional[ScanNode], Optional[str]]:
    """Trace a probe-side join key down the left (probe) spine to the
    ScanNode whose base column produces it.

    Filters pass the name through; projections are followed only when the
    output is a bare column reference (renames are rewritten); intermediate
    joins descend their own probe side.  Returns ``(None, None)`` when the
    key is computed, comes from a build side, or is not a scanned column —
    those joins simply get no SIP filter.
    """
    from repro.engine.expressions import ColumnRef

    current, name = node, key
    while True:
        if isinstance(current, ScanNode):
            if name in current.columns:
                return current, name
            return None, None
        if isinstance(current, FilterNode):
            current = current.child
            continue
        if isinstance(current, ProjectNode):
            expr = dict(current.outputs).get(name)
            if isinstance(expr, ColumnRef):
                name = expr.name
                current = current.child
                continue
            return None, None
        if isinstance(current, JoinNode):
            current = current.left
            continue
        return None, None

"""Physical operators over columnar batches: join, aggregate, sort/limit.

These are the building blocks the distributed executor composes.  Each is a
pure function from :class:`RowSet` inputs to a :class:`RowSet` output.

Aggregation supports the three distributed modes the planner needs:

* ``complete`` — one-shot aggregation (used when data is co-segmented on
  the group keys, so every group lives wholly on one node);
* ``partial`` — per-node pre-aggregation producing mergeable state;
* ``final`` — merging partial states on the initiator.

COUNT(DISTINCT x) merges by shipping deduplicated (group, x) pairs in the
partial phase unless the planner proves co-segmentation — the reason the
paper calls segmentation "particularly effective for the computation of
high-cardinality distinct aggregates" (section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.types import ColumnType, SchemaColumn, TableSchema
from repro.engine.expressions import ColumnRef, Expr
from repro.errors import ExecutionError
from repro.storage.container import RowSet

_AGG_FUNCS = ("sum", "count", "avg", "min", "max")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output column."""

    func: str
    argument: Optional[Expr]  # None only for count(*)
    output: str
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.func not in _AGG_FUNCS:
            raise ValueError(f"unknown aggregate {self.func!r}")
        if self.argument is None and self.func != "count":
            raise ValueError(f"{self.func} requires an argument")
        if self.distinct and self.func not in ("count",):
            # sum/min/max distinct are rare; count distinct is the headline.
            raise ValueError("DISTINCT supported for count only")


# ---------------------------------------------------------------------------
# grouping machinery


def _factorize(arr: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(codes, uniques): codes[i] indexes uniques; order of uniques sorted."""
    if arr.dtype.kind == "O":
        try:
            uniques_list = sorted({v for v in arr}, key=lambda v: (v is None, v))
        except TypeError:
            # Mixed-type object columns (e.g. a VARCHAR column fed ints by
            # an expression) are not mutually comparable; fall back to a
            # stable first-occurrence factorization.
            uniques_list = list(dict.fromkeys(arr.tolist()))
        index = {v: i for i, v in enumerate(uniques_list)}
        codes = np.fromiter((index[v] for v in arr), dtype=np.int64, count=len(arr))
        return codes, np.array(uniques_list, dtype=object)
    uniques, codes = np.unique(arr, return_inverse=True)
    return codes.astype(np.int64), uniques


def _group_codes(rows: RowSet, group_names: Sequence[str]) -> Tuple[np.ndarray, List[np.ndarray], int]:
    """Combined group code per row plus per-column unique arrays."""
    if not group_names:
        # Global aggregation always has exactly one group, even over an
        # empty input (SQL semantics: one output row).
        return np.zeros(rows.num_rows, dtype=np.int64), [], 1
    if rows.num_rows == 0:
        return np.zeros(0, dtype=np.int64), [], 0
    codes = np.zeros(rows.num_rows, dtype=np.int64)
    uniques: List[np.ndarray] = []
    for name in group_names:
        c, u = _factorize(rows.column(name))
        codes = codes * len(u) + c
        uniques.append(u)
    # Re-factorize the combined codes so they are dense.
    dense_uniques, dense = np.unique(codes, return_inverse=True)
    return dense.astype(np.int64), uniques, len(dense_uniques)


def _group_key_columns(
    rows: RowSet, group_names: Sequence[str], codes: np.ndarray, n_groups: int
) -> Dict[str, np.ndarray]:
    """Representative group-key values, one row per group."""
    if not group_names:
        return {}
    if len(codes) == 0:
        return {name: rows.column(name)[:0] for name in group_names}
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    is_first = np.concatenate(([True], sorted_codes[1:] != sorted_codes[:-1]))
    first_rows = order[is_first]  # one row per group, ordered by group code
    return {name: rows.column(name)[first_rows] for name in group_names}


def _output_type(func: str, arg: Optional[np.ndarray]) -> ColumnType:
    if func == "count":
        return ColumnType.INT
    if func == "avg":
        return ColumnType.FLOAT
    if arg is None:
        return ColumnType.INT
    kind = arg.dtype.kind
    if kind == "f":
        return ColumnType.FLOAT
    if kind == "O":
        return ColumnType.VARCHAR
    if kind == "b":
        return ColumnType.BOOL
    return ColumnType.INT


def _agg_array(
    func: str, values: Optional[np.ndarray], codes: np.ndarray, n: int
) -> np.ndarray:
    """One aggregate over dense group ``codes``, NULL-aware.

    NULL is ``None`` in object columns and ``NaN`` in float columns; int
    and bool columns cannot hold NULL (no sentinel).  NULLs are masked
    before the kernels run, so they never contribute to ``count(col)``,
    ``sum``, ``min``, or ``max``.
    """
    if len(codes) == 0:
        # Only the global-aggregate case reaches here with n == 1; grouped
        # aggregation over empty input produces zero groups.
        if func == "count":
            return np.zeros(n, dtype=np.int64)
        if func == "sum":
            if values is not None and values.dtype.kind == "f":
                return np.zeros(n, dtype=np.float64)
            return np.zeros(n, dtype=np.int64)
        # min/max of an empty input: NULL in SQL; we use the type's zero
        # (numeric) or None (string) — documented deviation.
        if values is not None and values.dtype.kind == "O":
            return np.full(n, None, dtype=object)
        if values is not None and values.dtype.kind == "f":
            return np.full(n, np.nan)
        return np.zeros(n, dtype=np.int64 if values is None else values.dtype)
    if func == "count":
        # count(*) (values is None) counts rows; count(col) skips NULLs.
        if values is not None:
            codes = codes[_valid_mask(values)]
        return np.bincount(codes, minlength=n).astype(np.int64)
    if func == "sum":
        if values.dtype.kind == "f":
            # NaN is the float NULL sentinel: mask it before bincount so a
            # single NULL does not poison its group.  An all-NULL group
            # sums to 0.0 rather than SQL's NULL — documented deviation.
            valid = _valid_mask(values)
            return np.bincount(codes[valid], weights=values[valid], minlength=n)
        return np.bincount(codes, weights=values.astype(np.float64), minlength=n).astype(np.int64)
    if func in ("min", "max"):
        if values.dtype.kind == "f":
            # Mask NULLs up front; a group whose values are all NULL then
            # vanishes from ``codes`` and stays NaN in the scatter below.
            valid = _valid_mask(values)
            codes = codes[valid]
            values = values[valid]
            if len(codes) == 0:
                return np.full(n, np.nan)
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        sorted_values = values[order]
        starts = np.concatenate(([0], np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1))
        if values.dtype.kind == "O":
            out = np.full(n, None, dtype=object)
            ends = np.concatenate((starts[1:], [len(sorted_values)]))
            for g, (s, e) in enumerate(zip(starts, ends)):
                chunk = [v for v in sorted_values[s:e] if v is not None and v == v]
                out[sorted_codes[s]] = (min(chunk) if func == "min" else max(chunk)) if chunk else None
            return out
        reducer = np.minimum if func == "min" else np.maximum
        if values.dtype.kind == "f":
            out = np.full(n, np.nan)
            out[sorted_codes[starts]] = reducer.reduceat(sorted_values, starts)
            return out
        return reducer.reduceat(sorted_values, starts)
    raise ExecutionError(f"unsupported aggregate {func!r}")


def aggregate(
    rows: RowSet,
    group_names: Sequence[str],
    specs: Sequence[AggregateSpec],
    mode: str = "complete",
) -> RowSet:
    """Group-by aggregation in one of the three distributed modes."""
    if mode not in ("complete", "partial", "final"):
        raise ValueError(f"unknown aggregation mode {mode!r}")
    if mode == "complete":
        if any(s.func == "avg" for s in specs):
            return _aggregate_complete_with_avg(rows, group_names, specs)
        return _aggregate_complete(rows, group_names, specs)
    if mode == "partial":
        return _aggregate_complete(rows, group_names, partial_specs(specs), partial=True, original=specs)
    return _aggregate_final(rows, group_names, specs)


def _aggregate_complete_with_avg(
    rows: RowSet, group_names: Sequence[str], specs: Sequence[AggregateSpec]
) -> RowSet:
    """One-shot aggregation with avg decomposed into sum/count locally."""
    decomposed: List[AggregateSpec] = []
    avg_outputs: List[str] = []
    for spec in specs:
        if spec.func == "avg":
            decomposed.append(replace(spec, func="sum", output=spec.output + "__psum"))
            decomposed.append(replace(spec, func="count", output=spec.output + "__pcount"))
            avg_outputs.append(spec.output)
        else:
            decomposed.append(spec)
    out = _aggregate_complete(rows, group_names, decomposed)
    cols = dict(out.columns)
    schema_cols = list(out.schema.columns)
    order = [c.name for c in schema_cols]
    for output in avg_outputs:
        psum = cols.pop(output + "__psum")
        pcount = cols.pop(output + "__pcount")
        with np.errstate(divide="ignore", invalid="ignore"):
            cols[output] = np.where(
                pcount > 0, psum / np.maximum(pcount, 1), np.nan
            )
        # Place the avg where its sum component sat, preserving spec order.
        index = order.index(output + "__psum")
        order[index] = output
        order.remove(output + "__pcount")
        schema_cols = [c for c in schema_cols
                       if c.name not in (output + "__psum", output + "__pcount")]
        schema_cols.insert(index, SchemaColumn(output, ColumnType.FLOAT))
    schema_cols.sort(key=lambda c: order.index(c.name))
    return RowSet(TableSchema(schema_cols), cols)


def _aggregate_complete(
    rows: RowSet,
    group_names: Sequence[str],
    specs: Sequence[AggregateSpec],
    partial: bool = False,
    original: Optional[Sequence[AggregateSpec]] = None,
) -> RowSet:
    if partial and rows.num_rows == 0 and not group_names:
        # A node with no matching rows contributes NO partial state:
        # emitting the zero-placeholder row would poison min/max merging
        # (min(0, real_min) is wrong).  The schema is derived from the
        # zero-row placeholder, then emptied.
        placeholder = _aggregate_complete(rows, group_names, specs)
        return placeholder.slice(0, 0)
    codes, _, n_groups = _group_codes(rows, group_names)
    key_cols = _group_key_columns(rows, group_names, codes, n_groups)

    out_cols: Dict[str, np.ndarray] = dict(key_cols)
    out_schema_cols: List[SchemaColumn] = [rows.schema.column(g) for g in group_names]

    # count-distinct in partial mode ships dedup'd (group, value) pairs
    # instead of counts, so the final phase can merge across nodes.
    if partial and any(spec.distinct for spec in specs):
        if len(specs) > 1:
            raise ExecutionError(
                "partial count-distinct cannot be combined with other "
                "aggregates in one operator; plan them separately"
            )
        spec = specs[0]
        values = spec.argument.evaluate(rows)
        pair_codes, _ = _factorize_pairs(codes, values)
        keep = _first_occurrence_mask(pair_codes)
        dedup = rows.filter(keep)
        out = {name: dedup.column(name) for name in group_names}
        out[spec.output] = spec.argument.evaluate(dedup)
        schema = TableSchema(
            [dedup.schema.column(g) for g in group_names]
            + [SchemaColumn(spec.output, _output_type("min", out[spec.output]))]
        )
        return RowSet(schema, out)

    for spec in specs:
        if spec.func == "avg":
            raise ExecutionError("avg must be decomposed before aggregation")
        if spec.argument is None:
            values = None
        else:
            values = spec.argument.evaluate(rows)
        if spec.distinct:
            if values is not None:
                keep_valid = _valid_mask(values)
                codes_d = codes[keep_valid]
                values_d = values[keep_valid]
            else:
                codes_d, values_d = codes, None
            pair_codes, _ = _factorize_pairs(codes_d, values_d)
            keep = _first_occurrence_mask(pair_codes)
            out_cols[spec.output] = _agg_array(
                "count", None, codes_d[keep], n_groups
            )
        else:
            out_cols[spec.output] = _agg_array(spec.func, values, codes, n_groups)
        out_schema_cols.append(SchemaColumn(spec.output, _output_type(spec.func, values)))

    return RowSet(TableSchema(out_schema_cols), out_cols)


def _factorize_pairs(codes: np.ndarray, values: Optional[np.ndarray]) -> Tuple[np.ndarray, int]:
    if len(codes) == 0:
        return codes, 0
    if values is None:
        return codes, int(codes.max()) + 1
    vcodes, vuniq = _factorize(values)
    combined = codes * max(len(vuniq), 1) + vcodes
    dense_uniq, dense = np.unique(combined, return_inverse=True)
    return dense.astype(np.int64), len(dense_uniq)


def _first_occurrence_mask(codes: np.ndarray) -> np.ndarray:
    seen = np.zeros(int(codes.max()) + 1 if len(codes) else 0, dtype=bool)
    keep = np.zeros(len(codes), dtype=bool)
    for i, c in enumerate(codes):
        if not seen[c]:
            seen[c] = True
            keep[i] = True
    return keep


def _valid_mask(values: np.ndarray) -> np.ndarray:
    """True where the value is non-NULL (``None`` objects, float ``NaN``)."""
    if values.dtype.kind == "O":
        return np.fromiter(
            (v is not None and v == v for v in values), dtype=bool, count=len(values)
        )
    if values.dtype.kind == "f":
        return ~np.isnan(values)
    return np.ones(len(values), dtype=bool)


# ---------------------------------------------------------------------------
# partial / final decomposition


def partial_specs(specs: Sequence[AggregateSpec]) -> List[AggregateSpec]:
    """Decompose aggregates into mergeable partial state columns."""
    out: List[AggregateSpec] = []
    for spec in specs:
        if spec.distinct:
            out.append(spec)
        elif spec.func == "avg":
            out.append(replace(spec, func="sum", output=spec.output + "__psum"))
            out.append(replace(spec, func="count", output=spec.output + "__pcount"))
        elif spec.func == "count":
            out.append(replace(spec, output=spec.output))
        else:
            out.append(spec)
    return out


def _aggregate_final(
    rows: RowSet, group_names: Sequence[str], specs: Sequence[AggregateSpec]
) -> RowSet:
    """Merge partial-state rows (concatenated from all nodes)."""
    merge_specs: List[AggregateSpec] = []
    avg_fixups: List[str] = []
    for spec in specs:
        if spec.distinct:
            merge_specs.append(
                AggregateSpec("count", ColumnRef(spec.output), spec.output, distinct=True)
            )
        elif spec.func == "avg":
            merge_specs.append(
                AggregateSpec("sum", ColumnRef(spec.output + "__psum"), spec.output + "__psum")
            )
            merge_specs.append(
                AggregateSpec("sum", ColumnRef(spec.output + "__pcount"), spec.output + "__pcount")
            )
            avg_fixups.append(spec.output)
        elif spec.func == "count":
            merge_specs.append(AggregateSpec("sum", ColumnRef(spec.output), spec.output))
        else:
            merge_specs.append(AggregateSpec(spec.func, ColumnRef(spec.output), spec.output))
    merged = _aggregate_complete(rows, group_names, merge_specs)
    if not avg_fixups:
        return merged
    cols = dict(merged.columns)
    schema_cols = list(merged.schema.columns)
    for output in avg_fixups:
        psum = cols.pop(output + "__psum")
        pcount = cols.pop(output + "__pcount")
        with np.errstate(divide="ignore", invalid="ignore"):
            cols[output] = np.where(pcount > 0, psum / np.maximum(pcount, 1), np.nan)
        schema_cols = [c for c in schema_cols if c.name not in (output + "__psum", output + "__pcount")]
        schema_cols.append(SchemaColumn(output, ColumnType.FLOAT))
    return RowSet(TableSchema(schema_cols), cols)


def final_count_sum(specs: Sequence[AggregateSpec]) -> List[AggregateSpec]:
    """Final-phase spec rewrite (exposed for the planner's tests)."""
    return [
        replace(s, func="sum") if s.func == "count" and not s.distinct else s
        for s in specs
    ]


# ---------------------------------------------------------------------------
# joins


def hash_join(
    left: RowSet,
    right: RowSet,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    how: str = "inner",
) -> RowSet:
    """Hash join; the smaller side should be ``right`` (build side).

    Output columns: all left columns then all right non-key columns (key
    columns are equal by definition; duplicated names get a ``_r`` suffix).
    """
    if how not in ("inner", "left"):
        raise ValueError(f"unsupported join type {how!r}")
    if len(left_keys) != len(right_keys):
        raise ValueError("join key lists differ in length")

    build: Dict[tuple, List[int]] = {}
    right_key_cols = [right.column(k) for k in right_keys]
    for i in range(right.num_rows):
        key = tuple(c[i] for c in right_key_cols)
        build.setdefault(key, []).append(i)

    left_key_cols = [left.column(k) for k in left_keys]
    left_idx: List[int] = []
    right_idx: List[int] = []
    unmatched: List[int] = []
    for i in range(left.num_rows):
        key = tuple(c[i] for c in left_key_cols)
        matches = build.get(key)
        if matches:
            left_idx.extend([i] * len(matches))
            right_idx.extend(matches)
        elif how == "left":
            unmatched.append(i)

    left_indices = np.asarray(left_idx + unmatched, dtype=np.int64)
    right_indices = np.asarray(right_idx, dtype=np.int64)

    out_cols: Dict[str, np.ndarray] = {}
    schema_cols: List[SchemaColumn] = []
    for c in left.schema.columns:
        out_cols[c.name] = left.column(c.name)[left_indices]
        schema_cols.append(c)

    n_matched = len(right_idx)
    n_out = len(left_indices)
    # Right key columns are retained: later plan stages may reference them
    # (column names are globally unique, so there is no collision; for the
    # matched rows their values equal the left keys by definition).
    for c in right.schema.columns:
        name = c.name if c.name not in out_cols else c.name + "_r"
        values = right.column(c.name)[right_indices]
        if n_out > n_matched:  # left join padding with NULL/zero
            if values.dtype.kind == "O":
                pad = np.full(n_out - n_matched, None, dtype=object)
            elif values.dtype.kind == "f":
                pad = np.full(n_out - n_matched, np.nan)
            else:
                pad = np.zeros(n_out - n_matched, dtype=values.dtype)
            values = np.concatenate([values, pad])
        out_cols[name] = values
        schema_cols.append(SchemaColumn(name, c.ctype))
    return RowSet(TableSchema(schema_cols), out_cols)


def join_match_mask(
    left: RowSet,
    right: RowSet,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
) -> np.ndarray:
    """Boolean mask over ``left``: which probe rows have a build match.

    Uses the same tuple-keyed dict probing as :func:`hash_join` so its
    equality semantics (including ``None`` keys matching ``None``) carry
    over exactly — the batched LEFT join splits each probe batch with this
    mask, joins the matched rows inner per batch, and defers the unmatched
    rows to one padded tail batch, reproducing the serial join's
    all-matched-then-all-unmatched row order.
    """
    if len(left_keys) != len(right_keys):
        raise ValueError("join key lists differ in length")
    build: Dict[tuple, bool] = {}
    right_key_cols = [right.column(k) for k in right_keys]
    for i in range(right.num_rows):
        build[tuple(c[i] for c in right_key_cols)] = True
    left_key_cols = [left.column(k) for k in left_keys]
    mask = np.zeros(left.num_rows, dtype=bool)
    for i in range(left.num_rows):
        if build.get(tuple(c[i] for c in left_key_cols)):
            mask[i] = True
    return mask


# ---------------------------------------------------------------------------
# sort / limit


def sort_limit(
    rows: RowSet,
    order: Sequence[Tuple[str, bool]],
    limit: Optional[int] = None,
) -> RowSet:
    """ORDER BY (name, ascending) pairs, then optional LIMIT."""
    indices = np.arange(rows.num_rows)
    for name, ascending in reversed(list(order)):
        column = rows.column(name)[indices]
        if column.dtype.kind == "O":
            # Python's sort is stable in both directions.
            sorter = sorted(
                range(len(column)),
                key=lambda i: (column[i] is None, column[i] if column[i] is not None else ""),
                reverse=not ascending,
            )
            sorter = np.asarray(sorter, dtype=np.int64)
        elif ascending:
            sorter = np.argsort(column, kind="stable")
        else:
            # Stable descending: negate (bools promote to int first).
            sorter = np.argsort(-column.astype(np.float64), kind="stable")
        indices = indices[sorter]
    if limit is not None:
        indices = indices[:limit]
    return rows.take(indices)

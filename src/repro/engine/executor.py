"""Distributed plan executor.

Executes a :class:`~repro.engine.planner.PhysicalPlan` against a
:class:`StorageProvider` (implemented by the Eon and Enterprise clusters).
Subtrees without aggregation run as per-participant *fragments* whose
results are gathered to the initiator; aggregation marks the fragment
boundary (one-phase, two-phase partial/final, or gather-and-aggregate),
and everything above it runs on the initiator.

Fragments run in one of two modes:

* **materializing** (default): every operator evaluates its whole input
  before the next starts — the volcano baseline and the differential
  oracle;
* **batched** (``batched=True``): scan→filter→project→join chains stream
  fixed-size row batches through fused generators.  Joins build once, then
  probe batch-at-a-time; single-key inner joins push an IN-list of build
  key values sideways (SIP) into the probe-side scan's predicate so
  container/block pruning and the I/O scheduler fetch less; and each
  scan's fetch durations are pooled per node and settled once per query
  (:class:`~repro.engine.pipeline.PipelineCharges`) — the pipeline driver
  keeps prefetch lanes full across scan boundaries instead of draining
  them at every operator.  Aggregates and sorts stay materializing
  pipeline breakers so results (including float summation order) are
  bit-identical to the materializing path.

The provider tells the executor whether the session's data placement still
preserves the segmentation property (it does not under container-split
crunch scaling — section 4.4); if not, local joins are downgraded to
broadcast and one-phase aggregation to two-phase, exactly the "data must be
shuffled" consequence the paper describes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.types import SchemaColumn, TableSchema
from repro.engine.cost import CostModel, QueryStats
from repro.engine.expressions import BinaryOp, ColumnRef, Expr, InList
from repro.engine.operators import aggregate, hash_join, join_match_mask, sort_limit
from repro.engine.pipeline import PipelineCharges, chunk_rows
from repro.engine.plan import (
    AggregateNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    has_node,
)
from repro.engine.planner import PhysicalPlan
from repro.errors import ExecutionError
from repro.storage.container import RowSet


@dataclass
class ScanResult:
    """What a storage provider returns for one fragment scan."""

    rows: RowSet
    io_seconds: float = 0.0
    bytes_from_cache: int = 0
    bytes_from_shared: int = 0
    containers_scanned: int = 0
    containers_pruned: int = 0
    blocks_pruned: int = 0
    # Depot/S3 accounting (per-file events; providers without a depot
    # leave these at zero).
    depot_hits: int = 0
    depot_misses: int = 0
    s3_requests: int = 0
    s3_dollars: float = 0.0
    # Parallel I/O scheduler accounting (zero when the scheduler is off
    # or the provider has no depot).
    prefetch_hits: int = 0
    peer_fetches: int = 0
    coalesced_gets: int = 0
    # Server-side pushdown accounting: containers answered by select_scan,
    # stored bytes those selects touched, and the scan's strategy label
    # ("depot" | "get" | "pushdown"; "" for providers without the notion).
    pushdown_scans: int = 0
    bytes_scanned: int = 0
    scan_strategy: str = ""
    #: Rows the server-side predicate removed before the wire; added back
    #: into ``rows_scanned`` so scan accounting is strategy-invariant.
    pushdown_rows_filtered: int = 0


class StorageProvider(abc.ABC):
    """The cluster-facing interface the executor runs against."""

    @abc.abstractmethod
    def participants(self) -> List[str]:
        """Nodes executing fragments for this session."""

    @abc.abstractmethod
    def initiator(self) -> str:
        """The session's initiator node (also a participant)."""

    @abc.abstractmethod
    def scan(
        self,
        node: str,
        projection: str,
        columns: Sequence[str],
        predicate: Optional[Expr],
        replicated: bool,
    ) -> ScanResult:
        """Scan the projection data this node serves in this session."""

    @property
    def preserves_segmentation(self) -> bool:
        """False when the session splits shards in a way that breaks the
        co-location property (container-split crunch scaling)."""
        return True

    def set_pushdown(self, mode: str) -> None:
        """Accept the session's pushdown mode (off | auto | on).

        Default: ignore — providers without server-side compute (the
        Enterprise cluster, test fakes) scan exactly as before.
        """
        return None

    # -- pipelined (batched) execution hooks -----------------------------------
    # Providers with a parallel I/O scheduler override these so the batched
    # executor can pool fetch charges across scans; the defaults keep every
    # other provider on per-scan charging.

    def make_pipeline_charges(self) -> Optional[PipelineCharges]:
        """Return a fresh per-query charge pool, or None when the provider
        has no lane-scheduled I/O to pool."""
        return None

    def attach_pipeline(self, charges: Optional[PipelineCharges]) -> None:
        """Route subsequent scans' fetch charging through ``charges``."""
        return None


@dataclass
class QueryResult:
    rows: RowSet
    stats: QueryStats
    plan: PhysicalPlan


def rowset_bytes(rows: RowSet) -> int:
    """Approximate wire size of a batch."""
    total = 0
    for name in rows.schema.names:
        column = rows.column(name)
        if column.dtype.kind == "O":
            total += sum(4 + (len(v) if isinstance(v, str) else 0) for v in column)
        else:
            total += column.dtype.itemsize * len(column)
    return total


class Executor:
    #: Build sides with more distinct keys than this don't produce a SIP
    #: filter — an IN-list that long prunes nothing and bloats predicates.
    SIP_MAX_KEYS = 4096

    def __init__(
        self,
        provider: StorageProvider,
        cost_model: Optional[CostModel] = None,
        obs=None,
        batched: bool = False,
        batch_size: int = 1024,
        sip: bool = True,
        pushdown: str = "auto",
    ):
        self.provider = provider
        self.cost = cost_model or CostModel()
        if pushdown not in ("auto", "on", "off"):
            raise ExecutionError(
                f"pushdown must be auto|on|off, got {pushdown!r}"
            )
        self.pushdown = pushdown
        self.provider.set_pushdown(pushdown)
        self.stats = QueryStats()
        self._broadcast_cache: Dict[int, RowSet] = {}
        # Observability is opt-in; ``None`` keeps every hot path at a
        # single attribute check (the zero-overhead-when-disabled contract).
        self._obs = obs if (obs is not None and obs.enabled) else None
        self.op_profiles: List = []
        self.batched = bool(batched)
        self.batch_size = int(batch_size)
        if self.batched and self.batch_size < 1:
            raise ExecutionError(f"batch_size must be >= 1, got {batch_size}")
        self.sip_enabled = bool(sip) and self.batched
        self.pipeline: Optional[PipelineCharges] = None
        self.batches_emitted = 0
        self.sip_filters_built = 0
        # (id(scan_node), participant) -> {id(join): IN-list expression}
        self._sip_filters: Dict[Tuple[int, str], Dict[int, Expr]] = {}

    # -- public ------------------------------------------------------------------

    def execute(self, plan: PhysicalPlan) -> QueryResult:
        self.stats = QueryStats()
        self.stats.dispatch_seconds = self.cost.dispatch_seconds
        self._broadcast_cache = {}
        self.op_profiles = []
        self._sip_filters = {}
        self.batches_emitted = 0
        self.sip_filters_built = 0
        self.pipeline = None
        if self.batched:
            self.pipeline = self.provider.make_pipeline_charges()
            self.provider.attach_pipeline(self.pipeline)
        if plan.single_node:
            self._participants = [self.provider.initiator()]
        else:
            self._participants = self.provider.participants()
        if not self._participants:
            raise ExecutionError("no participating nodes")
        try:
            rows = self._eval_top(plan.root)
        finally:
            if self.pipeline is not None:
                self._settle_pipeline()
                self.provider.attach_pipeline(None)
        if self.batched:
            self._note_pipeline(rows)
        if self._obs is not None and self.stats.total_pushdown_scans:
            self._obs.metrics.counter("engine.pushdown_scans").inc(
                self.stats.total_pushdown_scans
            )
            self._obs.metrics.counter("s3.bytes_scanned").inc(
                self.stats.total_bytes_scanned
            )
        return QueryResult(rows=rows, stats=self.stats, plan=plan)

    def _settle_pipeline(self) -> None:
        """Charge each node's pooled fetch durations as one lane schedule —
        the whole query's fetches behave like a single prefetch stream."""
        for node_name, makespan in self.pipeline.settle().items():
            self.stats.node(node_name).io_seconds += makespan

    def _note_pipeline(self, rows: RowSet) -> None:
        if self._obs is None:
            return
        self._obs.metrics.counter("engine.batches").inc(self.batches_emitted)
        if self.sip_filters_built:
            self._obs.metrics.counter("engine.sip_filters").inc(self.sip_filters_built)
        pooled = self.pipeline
        self._obs.tracer.record(
            "pipeline",
            duration=pooled.pipelined_seconds if pooled else 0.0,
            batches=self.batches_emitted,
            batch_size=self.batch_size,
            sip_filters=self.sip_filters_built,
            io_serial_seconds=pooled.serial_seconds if pooled else 0.0,
            rows=rows.num_rows,
        )

    # -- initiator-side evaluation ----------------------------------------------

    def _eval_top(self, node: PlanNode) -> RowSet:
        if self._is_fragment_safe(node):
            return self._gather(node)
        if isinstance(node, AggregateNode):
            return self._eval_aggregate(node)
        if isinstance(node, FilterNode):
            rows = self._eval_top(node.child)
            self._charge_initiator(rows.num_rows)
            out = rows.filter(node.predicate.evaluate(rows).astype(bool))
            self._note_op("Filter", self.provider.initiator(), out.num_rows,
                          rows.num_rows * self.cost.row_cpu_seconds)
            return out
        if isinstance(node, ProjectNode):
            rows = self._eval_top(node.child)
            self._charge_initiator(rows.num_rows)
            self._note_op("Project", self.provider.initiator(), rows.num_rows,
                          rows.num_rows * self.cost.row_cpu_seconds)
            return _project(rows, node.outputs)
        if isinstance(node, SortNode):
            rows = self._eval_top(node.child)
            self._charge_initiator(rows.num_rows)
            self._note_op("Sort", self.provider.initiator(), rows.num_rows,
                          rows.num_rows * self.cost.row_cpu_seconds)
            return sort_limit(rows, node.order)
        if isinstance(node, LimitNode):
            stop = None if node.limit is None else node.offset + node.limit
            if self.batched and stop is not None and self._is_fragment_safe(node.child):
                # Streaming LIMIT: stop pulling batches once enough rows
                # arrived.  Participants and batches are consumed in the
                # same order the materializing path concatenates them, so
                # the kept prefix is identical.
                return self._gather_limited(node.child, stop).slice(node.offset, stop)
            rows = self._eval_top(node.child)
            return rows.slice(node.offset, stop)
        raise ExecutionError(
            f"unsupported node above aggregation: {type(node).__name__}"
        )

    @staticmethod
    def _is_fragment_safe(node: PlanNode) -> bool:
        """True when the whole subtree can run per-participant and be
        gathered (no aggregation/sort/limit anywhere inside)."""
        from repro.engine.plan import walk

        return not any(
            isinstance(n, (AggregateNode, SortNode, LimitNode)) for n in walk(node)
        )

    def _eval_aggregate(self, node: AggregateNode) -> RowSet:
        strategy = self._effective_strategy(node)
        group = list(node.group_names)
        specs = list(node.specs)
        if strategy == "one_phase":
            parts = [
                aggregate(self._run_fragment(node.child, p), group, specs, "complete")
                for p in self._participants
            ]
            for p, part in zip(self._participants, parts):
                self.stats.node(p).cpu_seconds += part.num_rows * self.cost.row_cpu_seconds
                self._note_op("Aggregate", p, part.num_rows,
                              part.num_rows * self.cost.row_cpu_seconds,
                              detail="one_phase")
            return self._collect(parts)
        if strategy == "two_phase":
            parts = []
            for p in self._participants:
                fragment = self._run_fragment(node.child, p)
                self.stats.node(p).cpu_seconds += (
                    fragment.num_rows * self.cost.row_cpu_seconds
                )
                self._note_op("Aggregate", p, fragment.num_rows,
                              fragment.num_rows * self.cost.row_cpu_seconds,
                              detail="partial")
                parts.append(aggregate(fragment, group, specs, "partial"))
            merged = self._collect(parts)
            self._charge_initiator(merged.num_rows)
            self._note_op("Aggregate", self.provider.initiator(), merged.num_rows,
                          merged.num_rows * self.cost.row_cpu_seconds,
                          detail="final")
            return aggregate(merged, group, specs, "final")
        # gather_complete
        fragments = [self._run_fragment(node.child, p) for p in self._participants]
        gathered = self._collect(fragments)
        self._charge_initiator(gathered.num_rows)
        self._note_op("Aggregate", self.provider.initiator(), gathered.num_rows,
                      gathered.num_rows * self.cost.row_cpu_seconds,
                      detail="gather_complete")
        return aggregate(gathered, group, specs, "complete")

    def _effective_strategy(self, node: AggregateNode) -> str:
        strategy = node.strategy
        if len(self._participants) == 1:
            return "one_phase"  # complete aggregation is exact on one node
        if strategy == "one_phase" and not self.provider.preserves_segmentation:
            has_distinct = any(s.distinct for s in node.specs)
            strategy = (
                "gather_complete" if has_distinct and len(node.specs) > 1 else "two_phase"
            )
        if strategy == "two_phase" and any(s.distinct for s in node.specs) and len(node.specs) > 1:
            strategy = "gather_complete"
        return strategy

    def _gather(self, node: PlanNode) -> RowSet:
        fragments = [self._run_fragment(node, p) for p in self._participants]
        return self._collect(fragments)

    def _gather_limited(self, node: PlanNode, stop: int) -> RowSet:
        """Gather fragments but stop consuming batches at ``stop`` rows.

        Abandoned generators never run their remaining batches — scans on
        later participants may not fetch at all, which is the LIMIT
        early-exit the streaming engine buys (row content of the kept
        prefix is unchanged)."""
        collected: List[RowSet] = []
        taken = 0
        for participant in self._participants:
            per_node: List[RowSet] = []
            done = False
            for batch in self._stream_fragment(node, participant):
                per_node.append(batch)
                taken += batch.num_rows
                if taken >= stop:
                    done = True
                    break
            non_empty = [p for p in per_node if p.num_rows]
            if non_empty:
                collected.append(RowSet.concat(non_empty))
            elif per_node:
                collected.append(per_node[0])
            if done:
                break
        # _collect zips against participants; a truncated list only charges
        # network for the fragments actually shipped.
        return self._collect(collected)

    def _collect(self, parts: List[RowSet]) -> RowSet:
        """Concatenate per-node results, charging network for shipping."""
        initiator = self.provider.initiator()
        for participant, part in zip(self._participants, parts):
            if participant != initiator and part.num_rows:
                nbytes = rowset_bytes(part)
                self.stats.network_bytes += nbytes
                self.stats.network_seconds += self.cost.network_seconds(nbytes)
        return RowSet.concat(parts) if parts else RowSet.empty(TableSchema([]))

    def _charge_initiator(self, rows: int) -> None:
        self.stats.initiator_cpu_seconds += rows * self.cost.row_cpu_seconds

    # -- observability hooks -------------------------------------------------------

    def _hint_pushdown(self, node: ScanNode) -> None:
        """Hand the planner's eligibility verdict to providers that care
        (getattr-based so bare test providers need no new surface)."""
        note = getattr(self.provider, "note_scan_eligibility", None)
        if note is not None:
            note(node.pushdown_eligible)

    def _note_op(self, operator: str, node_name: str, rows: int, seconds: float,
                 *, bytes_from_cache: int = 0, bytes_from_shared: int = 0,
                 depot_hits: int = 0, depot_misses: int = 0,
                 s3_requests: int = 0, s3_dollars: float = 0.0,
                 detail: str = "", scan_strategy: str = "") -> None:
        if self._obs is None:
            return
        from repro.obs.profile import OperatorProfile

        self.op_profiles.append(
            OperatorProfile(
                path_id=len(self.op_profiles),
                operator=operator,
                node=node_name,
                rows=rows,
                sim_seconds=seconds,
                bytes_from_cache=bytes_from_cache,
                bytes_from_shared=bytes_from_shared,
                depot_hits=depot_hits,
                depot_misses=depot_misses,
                s3_requests=s3_requests,
                s3_dollars=s3_dollars,
                detail=detail,
                scan_strategy=scan_strategy,
            )
        )

    # -- fragment (per-participant) evaluation -------------------------------------

    def _run_fragment(self, node: PlanNode, participant: str) -> RowSet:
        """Top-level fragment invocation: one traced span per participant.

        The span's duration is the participant's busy-seconds delta, the
        same quantity the cost model folds into query latency — so the
        trace's fragment durations reconcile with ``QueryStats``.
        """
        if self._obs is None:
            return self._fragment_rows(node, participant)
        busy_before = self.stats.node(participant).busy_seconds
        with self._obs.tracer.span("fragment", node=participant) as span:
            rows = self._fragment_rows(node, participant)
            span.duration = self.stats.node(participant).busy_seconds - busy_before
            span.annotate(rows=rows.num_rows)
        return rows

    def _fragment_rows(self, node: PlanNode, participant: str) -> RowSet:
        """Evaluate a fragment fully: materializing directly, or by
        draining the batched stream (the result rows are identical — the
        stream is consecutive slices of the same evaluation order)."""
        if not self.batched:
            return self._eval_fragment(node, participant)
        parts = list(self._stream_fragment(node, participant))
        non_empty = [p for p in parts if p.num_rows]
        if non_empty:
            return RowSet.concat(non_empty)
        return parts[0]

    def _eval_fragment(self, node: PlanNode, participant: str) -> RowSet:
        work = self.stats.node(participant)
        if isinstance(node, ScanNode):
            self._hint_pushdown(node)
            result = self.provider.scan(
                participant,
                node.projection,
                node.columns,
                node.predicate,
                node.replicated,
            )
            work.io_seconds += result.io_seconds
            work.bytes_from_cache += result.bytes_from_cache
            work.bytes_from_shared += result.bytes_from_shared
            work.rows_scanned += result.rows.num_rows + result.pushdown_rows_filtered
            work.containers_scanned += result.containers_scanned
            work.containers_pruned += result.containers_pruned
            work.blocks_pruned += result.blocks_pruned
            work.prefetch_hits += result.prefetch_hits
            work.peer_fetches += result.peer_fetches
            work.coalesced_gets += result.coalesced_gets
            work.pushdown_scans += result.pushdown_scans
            work.bytes_scanned += result.bytes_scanned
            decode_cpu = (
                result.rows.num_rows * len(node.columns) * self.cost.cell_cpu_seconds
            )
            work.cpu_seconds += decode_cpu
            op_seconds = result.io_seconds + decode_cpu
            rows = result.rows
            if node.predicate is not None:
                predicate_cpu = rows.num_rows * self.cost.row_cpu_seconds
                work.cpu_seconds += predicate_cpu
                op_seconds += predicate_cpu
                rows = rows.filter(node.predicate.evaluate(rows).astype(bool))
                work.rows_processed += rows.num_rows
            self._note_op(
                "Scan", participant, rows.num_rows, op_seconds,
                bytes_from_cache=result.bytes_from_cache,
                bytes_from_shared=result.bytes_from_shared,
                depot_hits=result.depot_hits,
                depot_misses=result.depot_misses,
                s3_requests=result.s3_requests,
                s3_dollars=result.s3_dollars,
                detail=node.projection,
                scan_strategy=result.scan_strategy,
            )
            return rows
        if isinstance(node, FilterNode):
            rows = self._eval_fragment(node.child, participant)
            work.cpu_seconds += rows.num_rows * self.cost.row_cpu_seconds
            out = rows.filter(node.predicate.evaluate(rows).astype(bool))
            self._note_op("Filter", participant, out.num_rows,
                          rows.num_rows * self.cost.row_cpu_seconds)
            return out
        if isinstance(node, ProjectNode):
            rows = self._eval_fragment(node.child, participant)
            work.cpu_seconds += rows.num_rows * self.cost.row_cpu_seconds
            self._note_op("Project", participant, rows.num_rows,
                          rows.num_rows * self.cost.row_cpu_seconds)
            return _project(rows, node.outputs)
        if isinstance(node, JoinNode):
            return self._eval_join(node, participant)
        raise ExecutionError(
            f"node type {type(node).__name__} cannot appear inside a fragment"
        )

    def _eval_join(self, node: JoinNode, participant: str) -> RowSet:
        work = self.stats.node(participant)
        left = self._eval_fragment(node.left, participant)
        locality = node.locality
        if locality == "local" and not self.provider.preserves_segmentation:
            # Container-split crunch broke co-location; replicated build
            # sides are still safe, segmented ones must be broadcast.
            if not (isinstance(node.right, ScanNode) and node.right.replicated):
                locality = "broadcast"
        if locality == "local":
            right = self._eval_fragment(node.right, participant)
        else:
            right = self._broadcast(node.right, participant)
        out = hash_join(
            left, right, list(node.left_keys), list(node.right_keys), node.how
        )
        join_cpu = (
            (left.num_rows + right.num_rows + out.num_rows) * self.cost.row_cpu_seconds
        )
        work.cpu_seconds += join_cpu
        work.rows_processed += out.num_rows
        self._note_op("Join", participant, out.num_rows, join_cpu,
                      detail=f"{locality} {node.how}")
        return out

    def _broadcast(self, node: PlanNode, participant: str) -> RowSet:
        """Gather a build side once, ship it to every participant."""
        key = id(node)
        if key not in self._broadcast_cache:
            fragments = [self._fragment_rows(node, p) for p in self._participants]
            full = RowSet.concat(fragments)
            nbytes = rowset_bytes(full)
            fanout = max(len(self._participants) - 1, 1)
            self.stats.network_bytes += nbytes * fanout
            self.stats.network_seconds += self.cost.network_seconds(
                nbytes * fanout, messages=fanout
            )
            self._broadcast_cache[key] = full
        return self._broadcast_cache[key]

    # -- batched (pipelined) fragment evaluation -----------------------------------

    def _stream_fragment(self, node: PlanNode, participant: str):
        """Yield a fragment's rows as consecutive batches.

        Generators are lazy: nothing below runs until the first batch is
        pulled.  Join builds therefore complete top-down along the probe
        spine *before* the bottom scan executes — which is exactly the
        ordering SIP needs to land every IN-list in the scan's predicate.
        """
        work = self.stats.node(participant)
        if isinstance(node, ScanNode):
            predicate = self._effective_predicate(node, participant)
            self._hint_pushdown(node)
            result = self.provider.scan(
                participant,
                node.projection,
                node.columns,
                predicate,
                node.replicated,
            )
            work.io_seconds += result.io_seconds
            work.bytes_from_cache += result.bytes_from_cache
            work.bytes_from_shared += result.bytes_from_shared
            work.rows_scanned += result.rows.num_rows + result.pushdown_rows_filtered
            work.containers_scanned += result.containers_scanned
            work.containers_pruned += result.containers_pruned
            work.blocks_pruned += result.blocks_pruned
            work.prefetch_hits += result.prefetch_hits
            work.peer_fetches += result.peer_fetches
            work.coalesced_gets += result.coalesced_gets
            work.pushdown_scans += result.pushdown_scans
            work.bytes_scanned += result.bytes_scanned
            decode_cpu = (
                result.rows.num_rows * len(node.columns) * self.cost.cell_cpu_seconds
            )
            work.cpu_seconds += decode_cpu
            op_seconds = result.io_seconds + decode_cpu
            total_out = 0
            for batch in chunk_rows(result.rows, self.batch_size):
                self.batches_emitted += 1
                out = batch
                if predicate is not None:
                    predicate_cpu = batch.num_rows * self.cost.row_cpu_seconds
                    work.cpu_seconds += predicate_cpu
                    op_seconds += predicate_cpu
                    if batch.num_rows:
                        out = batch.filter(predicate.evaluate(batch).astype(bool))
                    work.rows_processed += out.num_rows
                total_out += out.num_rows
                yield out
            self._note_op(
                "Scan", participant, total_out, op_seconds,
                bytes_from_cache=result.bytes_from_cache,
                bytes_from_shared=result.bytes_from_shared,
                depot_hits=result.depot_hits,
                depot_misses=result.depot_misses,
                s3_requests=result.s3_requests,
                s3_dollars=result.s3_dollars,
                detail=node.projection,
                scan_strategy=result.scan_strategy,
            )
            return
        if isinstance(node, FilterNode):
            total_in = total_out = 0
            for batch in self._stream_fragment(node.child, participant):
                work.cpu_seconds += batch.num_rows * self.cost.row_cpu_seconds
                out = batch
                if batch.num_rows:
                    out = batch.filter(node.predicate.evaluate(batch).astype(bool))
                total_in += batch.num_rows
                total_out += out.num_rows
                yield out
            self._note_op("Filter", participant, total_out,
                          total_in * self.cost.row_cpu_seconds)
            return
        if isinstance(node, ProjectNode):
            total = 0
            for batch in self._stream_fragment(node.child, participant):
                work.cpu_seconds += batch.num_rows * self.cost.row_cpu_seconds
                total += batch.num_rows
                yield _project(batch, node.outputs)
            self._note_op("Project", participant, total,
                          total * self.cost.row_cpu_seconds)
            return
        if isinstance(node, JoinNode):
            yield from self._stream_join(node, participant)
            return
        raise ExecutionError(
            f"node type {type(node).__name__} cannot appear inside a fragment"
        )

    def _stream_join(self, node: JoinNode, participant: str):
        """Build once, then stream probe batches through the join.

        Inner joins probe each batch directly; the per-batch outputs
        concatenate to exactly the materializing join's output (probe order
        × build order).  LEFT joins split each batch by
        :func:`join_match_mask`, join the matched rows inner per batch, and
        hold the unmatched rows for one padded tail batch — reproducing the
        serial all-matched-then-all-unmatched row order.
        """
        work = self.stats.node(participant)
        locality = node.locality
        if locality == "local" and not self.provider.preserves_segmentation:
            # Container-split crunch broke co-location; replicated build
            # sides are still safe, segmented ones must be broadcast.
            if not (isinstance(node.right, ScanNode) and node.right.replicated):
                locality = "broadcast"
        if locality == "local":
            right = self._fragment_rows(node.right, participant)
        else:
            right = self._broadcast(node.right, participant)
        self._register_sip(node, right, participant)
        left_keys, right_keys = list(node.left_keys), list(node.right_keys)
        build_cpu_charged = False
        total_in = total_out = 0
        unmatched: List[RowSet] = []
        for batch in self._stream_fragment(node.left, participant):
            if not build_cpu_charged:
                work.cpu_seconds += right.num_rows * self.cost.row_cpu_seconds
                build_cpu_charged = True
            if node.how == "left":
                mask = join_match_mask(batch, right, left_keys, right_keys)
                missed = batch.filter(~mask)
                if missed.num_rows:
                    unmatched.append(missed)
                out = hash_join(
                    batch.filter(mask), right, left_keys, right_keys, "inner"
                )
            else:
                out = hash_join(batch, right, left_keys, right_keys, node.how)
            join_cpu = (batch.num_rows + out.num_rows) * self.cost.row_cpu_seconds
            work.cpu_seconds += join_cpu
            work.rows_processed += out.num_rows
            total_in += batch.num_rows
            total_out += out.num_rows
            yield out
        if not build_cpu_charged:
            work.cpu_seconds += right.num_rows * self.cost.row_cpu_seconds
        if node.how == "left" and unmatched:
            tail = hash_join(
                RowSet.concat(unmatched), right, left_keys, right_keys, "left"
            )
            join_cpu = (tail.num_rows * 2) * self.cost.row_cpu_seconds
            work.cpu_seconds += join_cpu
            work.rows_processed += tail.num_rows
            total_out += tail.num_rows
            yield tail
        self._note_op(
            "Join", participant, total_out,
            (total_in + right.num_rows + total_out) * self.cost.row_cpu_seconds,
            detail=f"{locality} {node.how} batched",
        )

    def _register_sip(self, join: JoinNode, build_rows: RowSet, participant: str) -> None:
        """Push an IN-list of build-side key values into the probe scan.

        Skipped for float keys (NaN equality differs between dict probing
        and array membership), for builds containing NULL keys (``None``
        probes match ``None`` builds in :func:`hash_join`, which
        ``InList.could_match`` pruning would not honour), and for builds
        wider than ``SIP_MAX_KEYS``.  An *empty* build is pushed: the empty
        IN-list prunes every container, matching the empty inner-join
        output."""
        if not self.sip_enabled or join.how != "inner":
            return
        target, column = join.sip_scan, join.sip_column
        if target is None or column is None:
            return
        registered = self._sip_filters.setdefault((id(target), participant), {})
        if id(join) in registered:
            return
        key_col = build_rows.column(join.right_keys[0])
        if key_col.dtype.kind == "f":
            return
        values = set(key_col.tolist())
        if None in values or len(values) > self.SIP_MAX_KEYS:
            return
        registered[id(join)] = InList(ColumnRef(column), tuple(sorted(values)))
        self.sip_filters_built += 1

    def _effective_predicate(self, node: ScanNode, participant: str) -> Optional[Expr]:
        extra = self._sip_filters.get((id(node), participant))
        if not extra:
            return node.predicate
        predicate = node.predicate
        for expr in extra.values():  # insertion order: deterministic
            predicate = expr if predicate is None else BinaryOp("and", predicate, expr)
        return predicate


def _project(rows: RowSet, outputs: Tuple[Tuple[str, Expr], ...]) -> RowSet:
    columns: Dict[str, np.ndarray] = {}
    schema_cols: List[SchemaColumn] = []
    for name, expr in outputs:
        values = expr.evaluate(rows)
        columns[name] = values
        schema_cols.append(SchemaColumn(name, _ctype_of(values)))
    return RowSet(TableSchema(schema_cols), columns)


def _ctype_of(values: np.ndarray):
    from repro.common.types import ColumnType

    kind = values.dtype.kind
    if kind == "O":
        return ColumnType.VARCHAR
    if kind == "f":
        return ColumnType.FLOAT
    if kind == "b":
        return ColumnType.BOOL
    return ColumnType.INT

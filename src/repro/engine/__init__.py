"""Query engine: expressions, operators, planner, distributed executor.

The paper reuses Vertica's optimizer and execution engine unchanged
(section 4: "Eon runs Vertica's standard cost-based distributed optimizer,
generating query plans equivalent to Enterprise mode").  This package is
our stand-in: a columnar volcano-style engine over numpy with a
distributed planner that exploits co-segmentation for local joins and
group-bys, container/block pruning from min/max statistics, and the crunch
scaling mechanisms of section 4.4.
"""

from repro.engine.expressions import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Literal,
    UnaryOp,
    col,
    lit,
)
from repro.engine.operators import (
    AggregateSpec,
    aggregate,
    hash_join,
    join_match_mask,
    sort_limit,
)
from repro.engine.pipeline import EngineStats, PipelineCharges, chunk_rows
from repro.engine.plan import (
    AggregateNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)

__all__ = [
    "Expr",
    "ColumnRef",
    "Literal",
    "BinaryOp",
    "UnaryOp",
    "FuncCall",
    "InList",
    "IsNull",
    "CaseWhen",
    "col",
    "lit",
    "AggregateSpec",
    "aggregate",
    "hash_join",
    "join_match_mask",
    "sort_limit",
    "EngineStats",
    "PipelineCharges",
    "chunk_rows",
    "PlanNode",
    "ScanNode",
    "FilterNode",
    "ProjectNode",
    "JoinNode",
    "AggregateNode",
    "SortNode",
    "LimitNode",
]

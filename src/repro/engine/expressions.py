"""Expression trees: evaluation over columnar batches and range analysis.

Expressions evaluate vectorised over a :class:`~repro.storage.container.RowSet`
(one numpy array in, one out).  They also support *range analysis* — "Vertica
accomplishes this by tracking minimum and maximum values of columns in each
storage and using expression analysis to determine if a predicate could ever
be true for the given minimum and maximum" (section 2.1).
:meth:`Expr.could_match` is that analysis: given per-column [min, max]
bounds it returns False only when the predicate is provably false for every
row, enabling container- and block-level pruning.
"""

from __future__ import annotations

import abc
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.common.dates import month_of_days, year_of_days
from repro.errors import ExecutionError
from repro.storage.container import RowSet

#: Per-column bounds used by range analysis: name -> (min, max).
Bounds = Dict[str, Tuple[object, object]]


class Expr(abc.ABC):
    """Base class of all expression nodes."""

    @abc.abstractmethod
    def evaluate(self, rows: RowSet) -> np.ndarray:
        """Vectorised evaluation; returns an array of len ``rows.num_rows``."""

    @abc.abstractmethod
    def columns_used(self) -> Set[str]:
        """Every column name referenced anywhere in the tree."""

    def could_match(self, bounds: Bounds) -> bool:
        """Range analysis for pruning.

        Must be *conservative*: True means "possibly matches"; only return
        False when no row within ``bounds`` can satisfy the predicate.
        Columns missing from ``bounds`` are unbounded.
        """
        return True

    # -- operator sugar for plan construction in Python ----------------------

    def __eq__(self, other):  # type: ignore[override]
        return BinaryOp("=", self, _wrap(other))

    def __ne__(self, other):  # type: ignore[override]
        return BinaryOp("<>", self, _wrap(other))

    def __lt__(self, other):
        return BinaryOp("<", self, _wrap(other))

    def __le__(self, other):
        return BinaryOp("<=", self, _wrap(other))

    def __gt__(self, other):
        return BinaryOp(">", self, _wrap(other))

    def __ge__(self, other):
        return BinaryOp(">=", self, _wrap(other))

    def __add__(self, other):
        return BinaryOp("+", self, _wrap(other))

    def __sub__(self, other):
        return BinaryOp("-", self, _wrap(other))

    def __mul__(self, other):
        return BinaryOp("*", self, _wrap(other))

    def __truediv__(self, other):
        return BinaryOp("/", self, _wrap(other))

    def __and__(self, other):
        return BinaryOp("and", self, _wrap(other))

    def __or__(self, other):
        return BinaryOp("or", self, _wrap(other))

    def __invert__(self):
        return UnaryOp("not", self)

    def __hash__(self):
        return hash(repr(self))

    def between(self, lo, hi) -> "Expr":
        return (self >= _wrap(lo)) & (self <= _wrap(hi))

    def isin(self, values: Sequence[object]) -> "Expr":
        return InList(self, tuple(values))

    def like(self, pattern: str) -> "Expr":
        return FuncCall("like", (self, Literal(pattern)))

    def is_null(self) -> "Expr":
        return IsNull(self)


def _wrap(value) -> "Expr":
    return value if isinstance(value, Expr) else Literal(value)


def col(name: str) -> "ColumnRef":
    return ColumnRef(name)


def lit(value) -> "Literal":
    return Literal(value)


class ColumnRef(Expr):
    def __init__(self, name: str):
        self.name = name

    def evaluate(self, rows: RowSet) -> np.ndarray:
        try:
            return rows.column(self.name)
        except KeyError:
            raise ExecutionError(f"column {self.name!r} not in batch") from None

    def columns_used(self) -> Set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expr):
    def __init__(self, value):
        self.value = value

    def evaluate(self, rows: RowSet) -> np.ndarray:
        if isinstance(self.value, str) or self.value is None:
            return np.full(rows.num_rows, self.value, dtype=object)
        if isinstance(self.value, bool):
            return np.full(rows.num_rows, self.value, dtype=np.bool_)
        if isinstance(self.value, int):
            return np.full(rows.num_rows, self.value, dtype=np.int64)
        return np.full(rows.num_rows, self.value, dtype=np.float64)

    def columns_used(self) -> Set[str]:
        return set()

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


_CMP = {"=", "<>", "<", "<=", ">", ">="}
_ARITH = {"+", "-", "*", "/"}
_BOOL = {"and", "or"}


class BinaryOp(Expr):
    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _CMP | _ARITH | _BOOL:
            raise ValueError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, rows: RowSet) -> np.ndarray:
        lhs = self.left.evaluate(rows)
        rhs = self.right.evaluate(rows)
        op = self.op
        if op == "=":
            return _null_safe_compare(lhs, rhs, "eq")
        if op == "<>":
            return _null_safe_compare(lhs, rhs, "ne")
        if op == "<":
            return _null_safe_compare(lhs, rhs, "lt")
        if op == "<=":
            return _null_safe_compare(lhs, rhs, "le")
        if op == ">":
            return _null_safe_compare(lhs, rhs, "gt")
        if op == ">=":
            return _null_safe_compare(lhs, rhs, "ge")
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            return np.divide(
                lhs.astype(np.float64), rhs.astype(np.float64),
            )
        if op == "and":
            return np.logical_and(lhs.astype(bool), rhs.astype(bool))
        return np.logical_or(lhs.astype(bool), rhs.astype(bool))

    def columns_used(self) -> Set[str]:
        return self.left.columns_used() | self.right.columns_used()

    def could_match(self, bounds: Bounds) -> bool:
        op = self.op
        if op == "and":
            return self.left.could_match(bounds) and self.right.could_match(bounds)
        if op == "or":
            return self.left.could_match(bounds) or self.right.could_match(bounds)
        if op in _CMP:
            return _range_compare(self.op, self.left, self.right, bounds)
        return True

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


def _null_safe_compare(lhs: np.ndarray, rhs: np.ndarray, kind: str) -> np.ndarray:
    """Comparison where NULL (None in object arrays) compares False."""
    if lhs.dtype.kind == "O" or rhs.dtype.kind == "O":
        out = np.empty(len(lhs), dtype=bool)
        for i in range(len(lhs)):
            a, b = lhs[i], rhs[i]
            if a is None or b is None:
                out[i] = False
                continue
            if kind == "eq":
                out[i] = a == b
            elif kind == "ne":
                out[i] = a != b
            elif kind == "lt":
                out[i] = a < b
            elif kind == "le":
                out[i] = a <= b
            elif kind == "gt":
                out[i] = a > b
            else:
                out[i] = a >= b
        return out
    ufunc = {
        "eq": np.equal, "ne": np.not_equal, "lt": np.less,
        "le": np.less_equal, "gt": np.greater, "ge": np.greater_equal,
    }[kind]
    return ufunc(lhs, rhs)


def _range_compare(op: str, left: Expr, right: Expr, bounds: Bounds) -> bool:
    """Prune ``col OP literal`` / ``literal OP col`` forms."""
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        column, value = left.name, right.value
    elif isinstance(right, ColumnRef) and isinstance(left, Literal):
        column, value = right.name, left.value
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    else:
        return True
    if column not in bounds or value is None:
        return True
    lo, hi = bounds[column]
    if lo is None or hi is None:
        return True
    try:
        if op == "=":
            return lo <= value <= hi
        if op == "<>":
            return not (lo == value == hi)
        if op == "<":
            return lo < value
        if op == "<=":
            return lo <= value
        if op == ">":
            return hi > value
        if op == ">=":
            return hi >= value
    except TypeError:
        return True  # mixed types: cannot prune safely
    return True


class UnaryOp(Expr):
    def __init__(self, op: str, operand: Expr):
        if op not in ("not", "-"):
            raise ValueError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def evaluate(self, rows: RowSet) -> np.ndarray:
        value = self.operand.evaluate(rows)
        if self.op == "not":
            return np.logical_not(value.astype(bool))
        return -value

    def columns_used(self) -> Set[str]:
        return self.operand.columns_used()

    def could_match(self, bounds: Bounds) -> bool:
        # NOT cannot be pruned from child pruning info (child True means
        # "maybe", whose negation is also "maybe").
        return True

    def __repr__(self) -> str:
        return f"({self.op} {self.operand!r})"


class InList(Expr):
    def __init__(self, operand: Expr, values: Tuple[object, ...]):
        self.operand = operand
        self.values = values

    def evaluate(self, rows: RowSet) -> np.ndarray:
        value = self.operand.evaluate(rows)
        if value.dtype.kind == "O":
            allowed = set(self.values)
            return np.fromiter(
                (v in allowed for v in value), dtype=bool, count=len(value)
            )
        return np.isin(value, np.asarray(self.values))

    def columns_used(self) -> Set[str]:
        return self.operand.columns_used()

    def could_match(self, bounds: Bounds) -> bool:
        if not isinstance(self.operand, ColumnRef):
            return True
        name = self.operand.name
        if name not in bounds:
            return True
        lo, hi = bounds[name]
        if lo is None or hi is None:
            return True
        try:
            return any(lo <= v <= hi for v in self.values if v is not None)
        except TypeError:
            return True

    def __repr__(self) -> str:
        return f"{self.operand!r} IN {self.values!r}"


class IsNull(Expr):
    def __init__(self, operand: Expr, negated: bool = False):
        self.operand = operand
        self.negated = negated

    def evaluate(self, rows: RowSet) -> np.ndarray:
        value = self.operand.evaluate(rows)
        if value.dtype.kind == "O":
            nulls = np.fromiter(
                (v is None for v in value), dtype=bool, count=len(value)
            )
        else:
            nulls = np.zeros(len(value), dtype=bool)
        return ~nulls if self.negated else nulls

    def columns_used(self) -> Set[str]:
        return self.operand.columns_used()

    def __repr__(self) -> str:
        return f"{self.operand!r} IS {'NOT ' if self.negated else ''}NULL"


class FuncCall(Expr):
    """Scalar functions: like, substr, year, month, abs, length."""

    _FUNCS = ("like", "substr", "year", "month", "abs", "length", "lower", "upper")

    def __init__(self, name: str, args: Tuple[Expr, ...]):
        name = name.lower()
        if name not in self._FUNCS:
            raise ValueError(f"unknown function {name!r}")
        self.name = name
        self.args = args

    def evaluate(self, rows: RowSet) -> np.ndarray:
        values = [a.evaluate(rows) for a in self.args]
        if self.name == "like":
            pattern = self.args[1]
            if not isinstance(pattern, Literal):
                raise ExecutionError("LIKE pattern must be a literal")
            regex = re.compile(_like_to_regex(pattern.value))
            return np.fromiter(
                (v is not None and regex.fullmatch(v) is not None for v in values[0]),
                dtype=bool,
                count=len(values[0]),
            )
        if self.name == "substr":
            start = int(self.args[1].value) if isinstance(self.args[1], Literal) else 1
            length = (
                int(self.args[2].value)
                if len(self.args) > 2 and isinstance(self.args[2], Literal)
                else None
            )
            begin = start - 1  # SQL substr is 1-based
            end = None if length is None else begin + length
            return np.array(
                [None if v is None else v[begin:end] for v in values[0]],
                dtype=object,
            )
        if self.name == "year":
            return np.fromiter(
                (year_of_days(v) for v in values[0]), dtype=np.int64, count=len(values[0])
            )
        if self.name == "month":
            return np.fromiter(
                (month_of_days(v) for v in values[0]), dtype=np.int64, count=len(values[0])
            )
        if self.name == "abs":
            return np.abs(values[0])
        if self.name == "length":
            return np.fromiter(
                (0 if v is None else len(v) for v in values[0]),
                dtype=np.int64,
                count=len(values[0]),
            )
        if self.name == "lower":
            return np.array(
                [None if v is None else v.lower() for v in values[0]], dtype=object
            )
        return np.array(
            [None if v is None else v.upper() for v in values[0]], dtype=object
        )

    def columns_used(self) -> Set[str]:
        used: Set[str] = set()
        for a in self.args:
            used |= a.columns_used()
        return used

    def could_match(self, bounds: Bounds) -> bool:
        if self.name == "like" and isinstance(self.args[0], ColumnRef):
            # A LIKE with a literal prefix can prune on string ranges.
            pattern = self.args[1]
            if isinstance(pattern, Literal) and isinstance(pattern.value, str):
                prefix = _literal_prefix(pattern.value)
                if prefix:
                    name = self.args[0].name
                    if name in bounds:
                        lo, hi = bounds[name]
                        if lo is not None and hi is not None:
                            upper = prefix + "￿"
                            return not (hi < prefix or lo > upper)
        return True

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"


def extract_column_bounds(expr: Optional["Expr"]) -> Dict[str, Tuple[object, object]]:
    """Per-column [lo, hi] bounds implied by a predicate's AND-conjuncts.

    Only simple ``col OP literal`` conjuncts contribute; anything else is
    ignored (bounds stay conservative).  Used for block-level pruning: a
    block whose min/max falls outside a column's bounds cannot contain a
    matching row, because AND requires every conjunct to hold.
    """
    bounds: Dict[str, Tuple[object, object]] = {}

    def note(column: str, lo: object, hi: object) -> None:
        old_lo, old_hi = bounds.get(column, (None, None))
        if lo is not None and (old_lo is None or lo > old_lo):
            old_lo = lo
        if hi is not None and (old_hi is None or hi < old_hi):
            old_hi = hi
        bounds[column] = (old_lo, old_hi)

    def visit(node: "Expr") -> None:
        if isinstance(node, BinaryOp):
            if node.op == "and":
                visit(node.left)
                visit(node.right)
                return
            if node.op in _CMP:
                left, right, op = node.left, node.right, node.op
                if isinstance(right, ColumnRef) and isinstance(left, Literal):
                    left, right = right, left
                    op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
                if (
                    isinstance(left, ColumnRef)
                    and isinstance(right, Literal)
                    and right.value is not None
                ):
                    value = right.value
                    if op == "=":
                        note(left.name, value, value)
                    elif op in ("<", "<="):
                        note(left.name, None, value)
                    elif op in (">", ">="):
                        note(left.name, value, None)
        elif isinstance(node, InList) and isinstance(node.operand, ColumnRef):
            values = [v for v in node.values if v is not None]
            if values:
                try:
                    note(node.operand.name, min(values), max(values))
                except TypeError:
                    pass

    if expr is not None:
        visit(expr)
    return bounds


def _like_to_regex(pattern: str) -> str:
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return "".join(out)


def _literal_prefix(pattern: str) -> str:
    prefix = []
    for ch in pattern:
        if ch in ("%", "_"):
            break
        prefix.append(ch)
    return "".join(prefix)


class CaseWhen(Expr):
    """CASE WHEN cond THEN value ... ELSE default END."""

    def __init__(self, branches: List[Tuple[Expr, Expr]], default: Optional[Expr]):
        if not branches:
            raise ValueError("CASE requires at least one WHEN branch")
        self.branches = branches
        self.default = default if default is not None else Literal(None)

    def evaluate(self, rows: RowSet) -> np.ndarray:
        result = self.default.evaluate(rows)
        decided = np.zeros(rows.num_rows, dtype=bool)
        # First matching branch wins; evaluate in order.
        out = None
        for cond, value in self.branches:
            mask = cond.evaluate(rows).astype(bool) & ~decided
            branch_value = value.evaluate(rows)
            if out is None:
                # Unify dtype: promote to object if kinds differ.
                if branch_value.dtype != result.dtype:
                    out = result.astype(object)
                else:
                    out = result.copy()
            out[mask] = branch_value[mask]
            decided |= mask
        return out if out is not None else result

    def columns_used(self) -> Set[str]:
        used = self.default.columns_used()
        for cond, value in self.branches:
            used |= cond.columns_used() | value.columns_used()
        return used

    def __repr__(self) -> str:
        return f"CASE({self.branches!r}, else={self.default!r})"

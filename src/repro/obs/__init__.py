"""``repro.obs`` — the observability subsystem (Data-Collector style).

Three pillars, all stamped by the simulated clock:

* :mod:`repro.obs.metrics` — counters/gauges/histograms with
  snapshot/delta/merge;
* :mod:`repro.obs.tracing` — parent/child spans across query execution,
  S3 requests, mergeout, reaping, and revive, exportable as JSON;
* :mod:`repro.obs.profile` + :mod:`repro.obs.system_tables` — per-operator
  query profiles exposed as ``v_monitor.*`` virtual tables that run
  through the ordinary SQL planner/executor;
* :mod:`repro.obs.datacollector` — bounded per-node event-history ring
  buffers behind the partitioned ``v_monitor.dc_*`` tables, read by
  :mod:`repro.obs.doctor` to explain slow queries.

:class:`Observability` bundles the three behind one switch.  Disabled (the
default for every cluster) it holds the shared no-op registry and tracer,
so instrumented hot paths cost one attribute check; call
``cluster.enable_observability()`` to start collecting.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Optional

from repro.obs.datacollector import (
    DataCollector,
    DC_NODE_PARTITIONED,
    DC_TABLES,
    NULL_DATA_COLLECTOR,
    NullDataCollector,
)
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    NULL_REGISTRY,
    NullRegistry,
    cluster_metrics,
)
from repro.obs.profile import OperatorProfile, QueryProfile, RequestRecord
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer, render_span_tree

__all__ = [
    "Observability",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRegistry",
    "NULL_REGISTRY",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "render_span_tree",
    "OperatorProfile",
    "QueryProfile",
    "RequestRecord",
    "cluster_metrics",
    "DataCollector",
    "NullDataCollector",
    "NULL_DATA_COLLECTOR",
    "DC_TABLES",
    "DC_NODE_PARTITIONED",
]


class Observability:
    """Per-cluster observability state: registry, tracer, recent requests."""

    def __init__(
        self,
        clock=None,
        enabled: bool = True,
        max_requests: int = 512,
        max_spans: int = 20000,
    ):
        self.clock = clock
        self.enabled = enabled
        if enabled:
            self.metrics = MetricsRegistry(clock)
            self.tracer = Tracer(clock, max_spans=max_spans, registry=self.metrics)
            self.dc = DataCollector(clock)
        else:
            self.metrics = NULL_REGISTRY
            self.tracer = NULL_TRACER
            self.dc = NULL_DATA_COLLECTOR
        #: Recent RequestRecord / QueryProfile entries (bounded, like the
        #: Data Collector's ring buffers).
        self.requests: "deque[RequestRecord]" = deque(maxlen=max_requests)
        self.profiles: "deque[QueryProfile]" = deque(maxlen=max_requests)
        self._request_ids = itertools.count(1)

    @classmethod
    def disabled(cls, clock=None) -> "Observability":
        return cls(clock=clock, enabled=False)

    def next_request_id(self) -> int:
        return next(self._request_ids)

"""Metrics registry: counters, gauges, and histograms on the sim clock.

Modeled on Vertica's Data Collector counters (and the Prometheus data
model): an instrument is identified by a name plus a sorted label set, and
every update stamps ``last_updated`` from the simulated clock — wall-clock
time means nothing in a discrete-event simulation.

The registry supports the three operations the benchmarks and system
tables need:

* :meth:`MetricsRegistry.snapshot` — an immutable, JSON-able copy;
* :meth:`MetricsSnapshot.delta` — what happened between two snapshots
  (counters/histograms subtract over the union of keys; gauges keep the
  later value);
* :meth:`MetricsSnapshot.merge` — combine per-node snapshots into a
  cluster-wide view (counters/histograms add; gauges get per-key
  semantics: occupancy-style gauges like cached bytes sum, ratio-style
  gauges — names ending in ``_rate``/``_ratio``/``_fraction``/
  ``_utilization``/``_pct`` — keep the latest value, since a cluster-wide
  "hit rate" of 2.4 is nonsense).

:data:`NULL_REGISTRY` is the zero-overhead-when-disabled implementation:
every instrument lookup returns one shared no-op object, so instrumented
code paths cost an attribute check and a method call that does nothing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Default histogram bucket upper bounds (seconds-oriented, exponential).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 100.0,
)

LabelItems = Tuple[Tuple[str, str], ...]

#: Gauge-name suffixes that mark a ratio-style gauge: merging across nodes
#: keeps the latest value instead of summing (summing hit rates is wrong).
_LATEST_GAUGE_SUFFIXES: Tuple[str, ...] = (
    "_rate", "_ratio", "_fraction", "_utilization", "_pct",
)


def _gauge_merges_latest(key: str) -> bool:
    name = key.split("{", 1)[0]
    return name.endswith(_LATEST_GAUGE_SUFFIXES)


def _label_key(name: str, labels: Dict[str, object]) -> Tuple[str, LabelItems]:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class _Instrument:
    __slots__ = ("name", "labels", "last_updated", "_clock")

    def __init__(self, name: str, labels: LabelItems, clock=None):
        self.name = name
        self.labels = labels
        self.last_updated = 0.0
        self._clock = clock

    def _stamp(self) -> None:
        if self._clock is not None:
            self.last_updated = self._clock.now


class Counter(_Instrument):
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelItems, clock=None):
        super().__init__(name, labels, clock)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount
        self._stamp()


class Gauge(_Instrument):
    """Point-in-time value (cache bytes, pending files, ...)."""

    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelItems, clock=None):
        super().__init__(name, labels, clock)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        self._stamp()

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount
        self._stamp()

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount
        self._stamp()


class Histogram(_Instrument):
    """Cumulative-bucket histogram (Prometheus style)."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        clock=None,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, labels, clock)
        self.bounds = tuple(buckets)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +inf bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        self._stamp()


class MetricsSnapshot:
    """An immutable copy of a registry's state at one sim-clock instant."""

    def __init__(
        self,
        at: float,
        counters: Dict[str, float],
        gauges: Dict[str, float],
        histograms: Dict[str, dict],
    ):
        self.at = at
        self.counters = dict(counters)
        self.gauges = dict(gauges)
        self.histograms = {k: dict(v) for k, v in histograms.items()}

    def as_dict(self) -> dict:
        return {
            "at": self.at,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                k: {
                    "count": v["count"],
                    "sum": v["sum"],
                    "buckets": list(v["buckets"]),
                }
                for k, v in sorted(self.histograms.items())
            },
        }

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened between ``earlier`` and this snapshot.

        Keys are totaled over the *union* of the two snapshots — a counter
        that appears only in ``earlier`` (an instrument retired between the
        snapshots) still shows up, as ``0 - earlier`` value, instead of
        silently vanishing from the report.
        """
        counters = {
            key: self.counters.get(key, 0.0) - earlier.counters.get(key, 0.0)
            for key in set(self.counters) | set(earlier.counters)
        }
        histograms = {}
        empty = lambda h: {
            "count": 0, "sum": 0.0, "buckets": [0] * len(h["buckets"])
        }
        for key in set(self.histograms) | set(earlier.histograms):
            h = self.histograms.get(key) or empty(earlier.histograms[key])
            prev = earlier.histograms.get(key) or empty(h)
            histograms[key] = {
                "count": h["count"] - prev["count"],
                "sum": h["sum"] - prev["sum"],
                "buckets": [
                    a - b for a, b in zip(h["buckets"], prev["buckets"])
                ],
            }
        return MetricsSnapshot(self.at, counters, dict(self.gauges), histograms)

    @staticmethod
    def merge(snapshots: List["MetricsSnapshot"]) -> "MetricsSnapshot":
        """Combine snapshots (e.g. one per node) into a cluster-wide view.

        Counters and histograms add.  Gauges merge per key: occupancy
        gauges (cached bytes, queue depth) sum, ratio gauges (names ending
        in a :data:`_LATEST_GAUGE_SUFFIXES` suffix) keep the value from
        the newest snapshot carrying the key — later list position wins
        ties, so merging per-node with a fresher cluster snapshot behaves
        like "latest".
        """
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        gauge_at: Dict[str, float] = {}
        histograms: Dict[str, dict] = {}
        at = 0.0
        for snap in snapshots:
            at = max(at, snap.at)
            for key, value in snap.counters.items():
                counters[key] = counters.get(key, 0.0) + value
            for key, value in snap.gauges.items():
                if _gauge_merges_latest(key):
                    if key not in gauge_at or snap.at >= gauge_at[key]:
                        gauges[key] = value
                        gauge_at[key] = snap.at
                else:
                    gauges[key] = gauges.get(key, 0.0) + value
            for key, h in snap.histograms.items():
                if key not in histograms:
                    histograms[key] = {
                        "count": 0,
                        "sum": 0.0,
                        "buckets": [0] * len(h["buckets"]),
                    }
                agg = histograms[key]
                agg["count"] += h["count"]
                agg["sum"] += h["sum"]
                agg["buckets"] = [
                    a + b for a, b in zip(agg["buckets"], h["buckets"])
                ]
        return MetricsSnapshot(at, counters, gauges, histograms)


class MetricsRegistry:
    """Instrument factory and holder; one per :class:`Observability`."""

    enabled = True

    def __init__(self, clock=None):
        self._clock = clock
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}

    def counter(self, name: str, **labels) -> Counter:
        key = _label_key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(name, key[1], self._clock)
        return inst

    def gauge(self, name: str, **labels) -> Gauge:
        key = _label_key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(name, key[1], self._clock)
        return inst

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        key = _label_key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(
                name, key[1], self._clock, buckets
            )
        return inst

    def snapshot(self) -> MetricsSnapshot:
        at = self._clock.now if self._clock is not None else 0.0
        return MetricsSnapshot(
            at,
            {
                _render_key(*key): inst.value
                for key, inst in self._counters.items()
            },
            {
                _render_key(*key): inst.value
                for key, inst in self._gauges.items()
            },
            {
                _render_key(*key): {
                    "count": inst.count,
                    "sum": inst.sum,
                    "buckets": list(inst.bucket_counts),
                }
                for key, inst in self._histograms.items()
            },
        )

    def as_dict(self) -> dict:
        return self.snapshot().as_dict()


class _NullInstrument:
    """Shared do-nothing instrument: the zero-overhead-disabled path."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0
    last_updated = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Disabled registry: every lookup returns the shared no-op instrument."""

    enabled = False

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(0.0, {}, {}, {})

    def as_dict(self) -> dict:
        return self.snapshot().as_dict()


NULL_REGISTRY = NullRegistry()


def cluster_metrics(cluster) -> dict:
    """Cluster-wide depot and S3 summary, JSON-able.

    Pulls from the live stats structs (:class:`CacheStats` per node, the
    shared backend's :class:`StorageMetrics` and per-operation-class
    stats), so it works whether or not the observability subsystem is
    enabled.  This is what BENCH JSON ``metrics`` sections and the shell's
    ``\\stats`` report.
    """
    depot = {
        "hits": 0,
        "misses": 0,
        "insertions": 0,
        "evictions": 0,
        "bytes_read": 0,
        "bytes_written": 0,
        "bytes_evicted": 0,
        "bytes_missed": 0,
        "prefetch_hits": 0,
        "prefetch_bytes_read": 0,
    }
    for name in sorted(getattr(cluster, "nodes", {})):
        cache = getattr(cluster.nodes[name], "cache", None)
        if cache is None:
            continue
        stats = cache.stats
        depot["hits"] += stats.hits
        depot["misses"] += stats.misses
        depot["insertions"] += stats.insertions
        depot["evictions"] += stats.evictions
        depot["bytes_read"] += stats.bytes_read
        depot["bytes_written"] += stats.bytes_written
        depot["bytes_evicted"] += stats.bytes_evicted
        depot["bytes_missed"] += stats.bytes_missed
        depot["prefetch_hits"] += stats.prefetch_hits
        depot["prefetch_bytes_read"] += stats.prefetch_bytes_read
    events = depot["hits"] + depot["misses"]
    depot["hit_rate"] = depot["hits"] / events if events else 0.0
    # Prefetch consumption is deliberately outside both terms: prefetched
    # bytes were already charged as misses at fetch time, so folding their
    # consumption into bytes_read would double-count (see CacheStats).
    read = depot["bytes_read"] + depot["bytes_missed"]
    depot["byte_hit_rate"] = depot["bytes_read"] / read if read else 0.0

    io: Dict[str, object] = {}
    scheduler = getattr(cluster, "io_scheduler", None)
    if scheduler is not None:
        io = scheduler.stats.as_dict()

    s3: Dict[str, object] = {}
    shared = getattr(cluster, "shared", None)
    if shared is not None:
        op_stats = getattr(shared, "op_stats", None)
        if op_stats:
            for op in sorted(op_stats):
                stats = op_stats[op]
                s3[op] = {
                    "requests": stats.requests,
                    "bytes": stats.bytes,
                    "dollars": stats.dollars,
                    "sim_seconds": stats.sim_seconds,
                    "transient_faults": stats.transient_faults,
                    "throttled": stats.throttled,
                }
        m = shared.metrics
        s3["totals"] = {
            "requests": m.total_requests,
            "get_requests": m.get_requests,
            "put_requests": m.put_requests,
            "dollars": m.dollars,
            "retries": m.transient_failures,
            "retry_backoff_seconds": m.retry_backoff_seconds,
        }
        # Server-side compute (S3 Select analogue): SELECT op-class bytes
        # are *scanned* stored bytes, kept out of the GET ledger above.
        select = op_stats.get("SELECT") if op_stats else None
        if select is not None:
            s3["totals"]["select_requests"] = select.requests
            s3["totals"]["bytes_scanned"] = select.bytes

    recovery: Dict[str, object] = {
        "failovers": getattr(cluster, "failovers", 0),
        "degraded": bool(getattr(cluster, "degraded", False)),
        "degraded_entries": getattr(cluster, "degraded_entries", 0),
        "degraded_exits": getattr(cluster, "degraded_exits", 0),
    }
    faults = getattr(shared, "faults", None) if shared is not None else None
    if faults is not None:
        recovery["outages_begun"] = getattr(faults, "outages_begun", 0)
        recovery["outage_rejections"] = getattr(faults, "outage_rejections", 0)

    wm: Dict[str, object] = {}
    admission = getattr(cluster, "admission", None)
    if admission is not None:
        wm["slots_in_use"] = admission.total_in_use()
        wm["active_queries"] = len(admission.active)
        wm["pending_admissions"] = admission.pending
        pools: Dict[str, object] = {}
        for name in sorted(admission.pools):
            pool = admission.pools[name]
            pools[name] = {
                "capacity": admission.pool_capacity(pool),
                "slots_in_use": admission.pool_in_use(pool),
                "queued": pool.queued,
                "peak_queue_depth": pool.peak_queue_depth,
                "admitted": pool.admitted,
                "queued_admissions": pool.queued_admissions,
                "queue_wait_seconds": pool.queue_wait_seconds,
                "timeouts": pool.timeouts,
                "rejected_queue_full": pool.rejected_queue_full,
                "rejected_busy": pool.rejected_busy,
                "rejected_draining": pool.rejected_draining,
                "sheds": pool.sheds,
                "breaker_trips": pool.breaker_trips,
                "draining": pool.draining,
            }
        wm["pools"] = pools
        wm["sheds"] = sum(p.sheds for p in admission.pools.values())

    autoscale: Dict[str, object] = {}
    scaler = getattr(cluster, "autoscaler", None)
    if scaler is not None:
        autoscale = {
            "ticks": scaler.ticks,
            "decisions": dict(scaler.decisions),
            "managed_subcluster": scaler.actuator.subcluster,
            "managed_nodes": scaler.actuator.size(),
            "pending_removals": len(scaler.actuator.pending_removals),
            "hibernated": scaler.actuator.hibernated,
            "events": len(scaler.events),
        }

    engine: Dict[str, object] = {}
    engine_stats = getattr(cluster, "engine_stats", None)
    if engine_stats is not None:
        engine = engine_stats.as_dict()
    return {
        "depot": depot, "io": io, "s3": s3, "recovery": recovery, "wm": wm,
        "autoscale": autoscale, "engine": engine,
    }

"""The Data Collector: per-node bounded ring buffers of telemetry history.

Vertica's Data Collector keeps a rotating on-disk log per component and
node, queryable through ``dc_*`` system tables — the layer §6 of the
paper leans on to explain depot and subscription behaviour after the
fact.  ``v_monitor`` (PR 2) snapshots *current* state only; this module
adds the history: every query event, admission decision, service run,
fault injection, and depot eviction lands in a bounded, sim-clock-stamped
ring buffer, and :mod:`repro.obs.system_tables` exposes the buffers as
partitioned ``v_monitor.dc_*`` tables whose producers prune on ``time``
and ``node`` predicates *before* materializing rows (vDBAHelper's
predicate-pushdown shape).

Determinism contract: recording draws no RNG, charges no storage
requests, and advances no clocks — a campaign digest is bit-identical
with the collector on or off.  Entries carry a global sequence number so
merged multi-node readings have one deterministic order, and each ring's
timestamps are non-decreasing (the sim clock never goes backward), which
is what lets :meth:`DataCollector.rows` binary-search a time range
instead of scanning the whole buffer.

:data:`NULL_DATA_COLLECTOR` is the zero-overhead-when-disabled
implementation, mirroring ``NULL_REGISTRY`` / ``NULL_TRACER``.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

#: Event tables and their column layout.  ``time`` is always first;
#: node-partitioned tables (``DC_NODE_PARTITIONED``) put ``node`` second.
#: These tuples are the single source of truth for the ``v_monitor``
#: schemas in :mod:`repro.obs.system_tables`.
DC_TABLES: Dict[str, Tuple[str, ...]] = {
    "dc_query_events": (
        "time", "node", "request_id", "event", "detail", "value",
    ),
    "dc_admission_decisions": (
        "time", "node", "pool", "decision", "reason", "slots",
        "wait_seconds",
    ),
    "dc_service_runs": ("time", "service", "outcome", "detail"),
    "dc_fault_injections": ("time", "operation", "kind", "detail"),
    "dc_depot_events": ("time", "node", "event", "object", "bytes"),
}

#: Tables keeping one ring per node (prunable on ``node`` predicates).
DC_NODE_PARTITIONED = frozenset(
    ("dc_query_events", "dc_admission_decisions", "dc_depot_events")
)


class RingBuffer:
    """Bounded append-only buffer: O(1) amortized append, indexed reads.

    Implemented as a list plus a start offset (compacted when the dead
    prefix reaches capacity) rather than a ``deque`` so binary search
    over the retained window is cheap — ``deque`` indexing is O(n).
    Evictions are counted in :attr:`dropped`, never silent.
    """

    __slots__ = ("capacity", "dropped", "_items", "_start")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self.dropped = 0
        self._items: List[tuple] = []
        self._start = 0

    def append(self, item: tuple) -> None:
        self._items.append(item)
        if len(self._items) - self._start > self.capacity:
            self._start += 1
            self.dropped += 1
            if self._start >= self.capacity:
                del self._items[: self._start]
                self._start = 0

    def __len__(self) -> int:
        return len(self._items) - self._start

    def __getitem__(self, index: int) -> tuple:
        if index < 0 or index >= len(self):
            raise IndexError(index)
        return self._items[self._start + index]

    def snapshot(self) -> List[tuple]:
        return self._items[self._start:]

    def time_slice(self, lo, hi, key_index: int) -> Tuple[int, int]:
        """Index range ``[i0, i1)`` of entries with ``lo <= t <= hi``.

        Entries are appended in non-decreasing ``key_index`` order, so the
        range is found by binary search.  ``None`` bounds are open; bounds
        that cannot be compared to the stored values (a type-mismatched
        literal) fall back to the full window — pruning is an optimization,
        the executor re-applies the real predicate.
        """
        n = len(self)
        i0, i1 = 0, n
        try:
            if lo is not None:
                a, b = 0, n
                while a < b:
                    mid = (a + b) // 2
                    if self[mid][key_index] < lo:
                        a = mid + 1
                    else:
                        b = mid
                i0 = a
            if hi is not None:
                a, b = i0, n
                while a < b:
                    mid = (a + b) // 2
                    if self[mid][key_index] <= hi:
                        a = mid + 1
                    else:
                        b = mid
                i1 = a
        except TypeError:
            return 0, n
        return i0, i1


class DataCollector:
    """Per-(table, node) ring buffers with predicate-pruned reads."""

    enabled = True

    def __init__(self, clock=None, capacity: int = 2048):
        self._clock = clock
        self.capacity = capacity
        self._rings: Dict[str, Dict[str, RingBuffer]] = {
            table: {} for table in DC_TABLES
        }
        #: Global append sequence: the deterministic total order used when
        #: merging per-node rings back into one row stream.
        self._seq = itertools.count(1)
        #: Ring entries materialized by :meth:`rows` since construction —
        #: the observable the pruning tests assert on (a pruned scan must
        #: touch only the pruned row range).
        self.rows_examined = 0

    def _now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    # -- recording --------------------------------------------------------------

    def record(self, table: str, node: str, values: tuple) -> None:
        """Append one event.  ``values`` are the columns after ``time``
        (and after ``node`` for node-partitioned tables); the timestamp is
        stamped from the sim clock, the sequence number internally."""
        rings = self._rings[table]
        ring = rings.get(node)
        if ring is None:
            ring = rings[node] = RingBuffer(self.capacity)
        ring.append((next(self._seq), self._now()) + tuple(values))

    def dropped(self, table: Optional[str] = None) -> int:
        """Total evicted entries (optionally for one table)."""
        tables = [table] if table is not None else list(self._rings)
        return sum(
            ring.dropped
            for name in tables
            for ring in self._rings[name].values()
        )

    # -- reading ----------------------------------------------------------------

    def rows(
        self,
        table: str,
        bounds: Optional[Dict[str, Tuple[object, object]]] = None,
    ) -> List[tuple]:
        """Materialize ``table`` rows, pruned by ``bounds``.

        ``bounds`` maps partition-column name to an inclusive ``(lo, hi)``
        pair (either end may be ``None``), as produced by
        :func:`repro.engine.expressions.extract_column_bounds`.  Pruning
        is conservative — bounds come from AND-conjuncts, so rows outside
        them cannot match and everything inside still passes through the
        executor's full predicate.  Node pruning skips whole rings; time
        pruning binary-searches within each ring.  Every entry actually
        materialized increments :attr:`rows_examined`.
        """
        bounds = bounds or {}
        node_partitioned = table in DC_NODE_PARTITIONED
        time_lo, time_hi = bounds.get("time", (None, None))
        node_lo, node_hi = (
            bounds.get("node", (None, None)) if node_partitioned else (None, None)
        )
        merged: List[tuple] = []
        rings = self._rings[table]
        for node in sorted(rings):
            if node_lo is not None or node_hi is not None:
                try:
                    if node_lo is not None and node < node_lo:
                        continue
                    if node_hi is not None and node > node_hi:
                        continue
                except TypeError:
                    pass  # incomparable bound: read the ring, executor filters
            ring = rings[node]
            i0, i1 = ring.time_slice(time_lo, time_hi, key_index=1)
            for i in range(i0, i1):
                entry = ring[i]
                self.rows_examined += 1
                if node_partitioned:
                    merged.append((entry[0], entry[1], node) + entry[2:])
                else:
                    merged.append(entry)
        merged.sort(key=lambda entry: entry[0])
        return [entry[1:] for entry in merged]


class NullDataCollector:
    """Disabled collector: records nothing, reads empty."""

    enabled = False
    capacity = 0
    rows_examined = 0

    def record(self, table: str, node: str, values: tuple) -> None:
        pass

    def dropped(self, table: Optional[str] = None) -> int:
        return 0

    def rows(self, table: str, bounds=None) -> List[tuple]:
        return []


NULL_DATA_COLLECTOR = NullDataCollector()

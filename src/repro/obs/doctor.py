"""``\\doctor``: turn recorded telemetry into a "why was this slow" verdict.

A recorded query's latency decomposes into the components the Data
Collector and request records already track separately:

* **queue wait** — admission queue time (``dispatch_seconds`` share from
  the workload manager; the noisy-neighbor signature);
* **failover backoff** — session-level retry penalties after a
  participant died mid-query (the slow-node-straggler signature);
* **throttling** — retry backoff accrued inside the storage layer's
  mandatory retry loop while S3 injected transient faults (the
  skewed-shard-hotspot / throttling-burst signature);
* **depot misses** — simulated seconds spent on shared-storage requests,
  which a warm depot would have served locally (the thundering-herd
  depot-stampede signature);
* **execution** — whatever latency remains: compute, exchange, the query
  itself.

:func:`diagnose` picks a request (the slowest recorded one by default),
computes the breakdown from its :class:`~repro.obs.profile.RequestRecord`,
and names the dominant component.  :meth:`Diagnosis.render` is the
one-screen shell report; its final line — ``dominant cause: <name> — …``
— is the machine-parsable verdict the scenario tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ReproError

#: Attribution order: names, and the deterministic tie-break priority when
#: two components are exactly equal (earlier wins).
COMPONENTS: Tuple[str, ...] = (
    "queue wait",
    "depot misses",
    "failover backoff",
    "throttling",
    "execution",
)

_HINTS = {
    "queue wait": (
        "the query sat in the admission queue; the pool was saturated "
        "by concurrent work (noisy neighbor) — add capacity, raise "
        "execution_slots, or isolate the tenant in its own subcluster"
    ),
    "depot misses": (
        "most of the latency was shared-storage reads a warm depot "
        "would have served locally — the depot was cold or evicting "
        "(thundering herd); grow the depot or warm it before querying"
    ),
    "failover backoff": (
        "a participant failed mid-query and the session retried with "
        "backoff — check node health; the query itself was fine once "
        "it found surviving subscribers"
    ),
    "throttling": (
        "shared storage injected transient faults and the retry loop's "
        "backoff dominated — S3 throttling burst; spread the request "
        "load or let the burst pass"
    ),
    "execution": (
        "the latency is genuine execution work (scan/join/aggregate "
        "compute and data movement) — tune the query or its projections"
    ),
}


@dataclass
class Diagnosis:
    """One diagnosed request: the breakdown and its verdict."""

    request_id: int
    request: str
    initiator: str
    start_seconds: float
    latency_seconds: float
    #: ``(component, seconds)`` in :data:`COMPONENTS` order.
    components: Tuple[Tuple[str, float], ...]
    dominant: str
    rows_produced: int = 0
    depot_hits: int = 0
    depot_misses: int = 0
    s3_requests: int = 0
    s3_dollars: float = 0.0
    retries: int = 0
    #: Top operators by sim-seconds, ``(operator, node, sim_seconds)``.
    top_operators: Tuple[Tuple[str, str, float], ...] = ()

    @property
    def hint(self) -> str:
        return _HINTS[self.dominant]

    def render(self) -> str:
        latency = self.latency_seconds
        lines = [
            f"-- doctor: request {self.request_id} --",
            f"  sql:       {self.request}",
            f"  initiator: {self.initiator}   started t={self.start_seconds:.3f}"
            f"   latency {latency * 1000:.3f} ms",
            f"  rows {self.rows_produced}   depot {self.depot_hits} hits"
            f" / {self.depot_misses} misses   s3 {self.s3_requests} reqs"
            f" (${self.s3_dollars:.6f})   retries {self.retries}",
            "  breakdown:",
        ]
        for name, seconds in self.components:
            share = seconds / latency * 100.0 if latency > 0 else 0.0
            lines.append(
                f"    {name:<18} {seconds * 1000:10.3f} ms  {share:5.1f}%"
            )
        if self.top_operators:
            lines.append("  top operators:")
            for operator, node, seconds in self.top_operators:
                lines.append(
                    f"    {operator:<12} on {node:<6} {seconds * 1000:10.3f} ms"
                )
        lines.append(f"  dominant cause: {self.dominant} — {self.hint}")
        return "\n".join(lines)


def _breakdown(record) -> Tuple[Tuple[str, float], ...]:
    """Latency components of one RequestRecord, in COMPONENTS order.

    ``storage_io_seconds`` is the shared backend's sim-seconds consumed
    during execution — time a fully warm depot would not have spent.
    ``execution`` is the floor-at-zero remainder, so the shares always
    sum to at most the recorded latency.
    """
    queue = record.queue_wait_seconds
    failover = record.failover_backoff_seconds
    throttle = record.retry_backoff_seconds
    storage = record.storage_io_seconds
    execution = max(
        0.0, record.duration_seconds - queue - failover - throttle - storage
    )
    return (
        ("queue wait", queue),
        ("depot misses", storage),
        ("failover backoff", failover),
        ("throttling", throttle),
        ("execution", execution),
    )


def diagnose(cluster, request_id: Optional[int] = None) -> Diagnosis:
    """Diagnose one recorded request (default: the slowest on record).

    Raises :class:`ReproError` when observability is off, nothing has
    been recorded yet, or ``request_id`` is unknown (the request ring is
    bounded, so old ids age out).
    """
    obs = getattr(cluster, "obs", None)
    if obs is None or not obs.enabled:
        raise ReproError(
            "doctor needs observability: call cluster.enable_observability() "
            "(or shell \\profile) and re-run the workload"
        )
    records: List = list(obs.requests)
    if not records:
        raise ReproError("doctor: no recorded requests yet")
    if request_id is None:
        record = max(records, key=lambda r: (r.duration_seconds, r.request_id))
    else:
        matches = [r for r in records if r.request_id == request_id]
        if not matches:
            known = ", ".join(str(r.request_id) for r in records[-8:])
            raise ReproError(
                f"doctor: no record of request {request_id} "
                f"(recent ids: {known})"
            )
        record = matches[-1]
    components = _breakdown(record)
    if all(seconds == 0.0 for _, seconds in components):
        dominant = "execution"  # a 0-latency query has nothing to blame
    else:
        # max() keeps the first maximum, so exact ties resolve in
        # COMPONENTS priority order.
        dominant = max(components, key=lambda item: item[1])[0]
    top_operators: Tuple[Tuple[str, str, float], ...] = ()
    for profile in obs.profiles:
        if profile.request_id == record.request_id:
            ranked = sorted(
                profile.operators, key=lambda op: -op.sim_seconds
            )[:3]
            top_operators = tuple(
                (op.operator, op.node, op.sim_seconds) for op in ranked
            )
    return Diagnosis(
        request_id=record.request_id,
        request=record.request,
        initiator=record.node_name,
        start_seconds=record.start_seconds,
        latency_seconds=record.duration_seconds,
        components=components,
        dominant=dominant,
        rows_produced=record.rows_produced,
        depot_hits=record.depot_hits,
        depot_misses=record.depot_misses,
        s3_requests=record.s3_requests,
        s3_dollars=record.s3_dollars,
        retries=record.retries,
        top_operators=top_operators,
    )

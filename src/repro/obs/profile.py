"""Query profiles: per-operator execution accounting.

The shape follows Vertica's ``EXECUTION_ENGINE_PROFILES`` /
``DC_REQUESTS_ISSUED``: one :class:`RequestRecord` per query with its
request-level totals (latency, rows, depot hits/misses, S3 requests and
dollars), and one :class:`OperatorProfile` per plan operator instance
(Scan on node X, Join on node Y, the initiator-side final Aggregate, ...)
with rows, bytes, and sim-seconds attributed to that operator.

Dollar and depot attribution comes from the scan layer
(:class:`~repro.engine.executor.ScanResult` carries the per-scan counts),
so profile totals reconcile with :class:`SimulatedS3` accounting — a
property the system-table tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass
class OperatorProfile:
    """One operator instance's share of a query's work."""

    path_id: int
    operator: str
    node: str
    rows: int = 0
    sim_seconds: float = 0.0
    bytes_from_cache: int = 0
    bytes_from_shared: int = 0
    depot_hits: int = 0
    depot_misses: int = 0
    s3_requests: int = 0
    s3_dollars: float = 0.0
    detail: str = ""
    #: Scan operators only: how the scan reached storage
    #: ("depot" | "get" | "pushdown"); empty for non-scan operators.
    scan_strategy: str = ""


@dataclass
class QueryProfile:
    """All operator profiles of one profiled query."""

    request_id: int
    request: str
    initiator: str
    start_seconds: float
    latency_seconds: float
    operators: Tuple[OperatorProfile, ...] = ()

    @property
    def total_s3_requests(self) -> int:
        return sum(op.s3_requests for op in self.operators)

    @property
    def total_s3_dollars(self) -> float:
        return sum(op.s3_dollars for op in self.operators)

    @property
    def total_depot_hits(self) -> int:
        return sum(op.depot_hits for op in self.operators)


@dataclass
class RequestRecord:
    """Request-level accounting: one row of ``dc_requests_issued``."""

    request_id: int
    node_name: str
    request: str
    start_seconds: float
    duration_seconds: float
    rows_produced: int = 0
    depot_hits: int = 0
    depot_misses: int = 0
    s3_requests: int = 0
    s3_dollars: float = 0.0
    #: Latency components the doctor attributes blame from.  All default
    #: to zero so pre-existing constructors keep working.
    queue_wait_seconds: float = 0.0
    failover_backoff_seconds: float = 0.0
    retry_backoff_seconds: float = 0.0
    retries: int = 0
    storage_io_seconds: float = 0.0

"""Span-based tracing on the simulated clock.

A :class:`Span` is one timed unit of work — a query, one participant's
fragment, one S3 GET, a mergeout job, a reaper sweep.  Spans form a tree
via ``parent_id``; the tracer keeps a stack so nesting falls out of
``with tracer.span(...)`` blocks, and :meth:`Tracer.record` attaches leaf
spans (completed instants with a known duration) under whatever is open.

Durations are *sim-clock* durations.  Queries in this repo do not advance
the clock — their latency is computed by the cost model — so spans opened
around query work set ``span.duration`` explicitly from the cost model's
answer (fragment busy-seconds, per-request IO seconds).  Spans around
clock-driven work (services, campaigns) default to the clock delta between
enter and exit.

The trace is bounded (``max_spans``, oldest dropped) and exportable as
JSON; :meth:`Tracer.mark`/:meth:`Tracer.spans_since` let the simulation
harness attach exactly the spans of a failing step to the violation.
Drops are never silent: each evicted span bumps :attr:`Tracer.dropped`
and the ``obs.spans_dropped`` counter, and
:meth:`Tracer.truncated_since` tells a ``spans_since`` caller whether
its window lost spans to eviction.

:data:`NULL_TRACER` is the zero-overhead-when-disabled implementation.
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from typing import Dict, List, Optional


class Span:
    """One timed unit of work in the trace tree."""

    __slots__ = ("span_id", "parent_id", "name", "start", "duration", "attrs", "_tracer")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        attrs: Dict[str, object],
        tracer: Optional["Tracer"] = None,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.duration: Optional[float] = None
        self.attrs = attrs
        self._tracer = tracer

    def annotate(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration if self.duration is not None else 0.0,
            "attrs": dict(self.attrs),
        }

    # -- context manager: push/pop on the owning tracer's stack -----------------

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        if tracer is not None and tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        if self.duration is None:
            self.duration = (tracer._now() - self.start) if tracer is not None else 0.0
        if exc is not None:
            self.attrs["error"] = f"{type(exc).__name__}: {exc}"
        return False

    def __repr__(self) -> str:
        return f"Span({self.name!r}, id={self.span_id}, dur={self.duration})"


class Tracer:
    """Records a bounded tree of spans stamped by the sim clock."""

    enabled = True

    def __init__(self, clock=None, max_spans: int = 20000, registry=None):
        self._clock = clock
        self._ids = itertools.count(1)
        self._stack: List[Span] = []
        self._spans: "deque[Span]" = deque(maxlen=max_spans)
        self._registry = registry
        #: Spans evicted from the bounded deque since construction.
        self.dropped = 0
        #: Highest span_id evicted so far (0 = nothing evicted yet).
        self._evicted_through = 0

    def _now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    # -- recording --------------------------------------------------------------

    def _append(self, span: Span) -> None:
        if self._spans.maxlen is not None and len(self._spans) == self._spans.maxlen:
            self._evicted_through = self._spans[0].span_id
            self.dropped += 1
            if self._registry is not None:
                self._registry.counter("obs.spans_dropped").inc()
        self._spans.append(span)

    def span(self, name: str, **attrs) -> Span:
        """Open a span; use as ``with tracer.span("query") as s: ...``.

        The span's duration defaults to the clock delta at exit; set
        ``s.duration`` inside the block for cost-model-derived durations.
        """
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(next(self._ids), parent, name, self._now(), dict(attrs), self)
        self._append(span)
        return span

    def record(self, name: str, duration: float = 0.0, **attrs) -> Span:
        """Attach a completed leaf span under the currently open span."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(next(self._ids), parent, name, self._now(), dict(attrs))
        span.duration = duration
        self._append(span)
        return span

    # -- reading ----------------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    def mark(self) -> int:
        """A bookmark; pair with :meth:`spans_since`.

        Span ids are issued in order and spans enter the deque at open
        time, so the deque tail holds the highest id issued so far.
        """
        last = self._spans[-1].span_id if self._spans else 0
        return last + 1

    def spans_since(self, mark: int) -> List[Span]:
        return [s for s in self._spans if s.span_id >= mark]

    def truncated_since(self, mark: int) -> bool:
        """True when eviction has eaten into the ``[mark, now]`` window —
        i.e. :meth:`spans_since` for this mark is missing spans."""
        return self._evicted_through >= mark

    def to_json(self, spans: Optional[List[Span]] = None) -> str:
        spans = self.spans if spans is None else spans
        return json.dumps([s.to_dict() for s in spans], indent=2, sort_keys=True)

    def render_tree(self, spans: Optional[List[Span]] = None) -> str:
        """Pretty-print the span tree (indentation by parentage)."""
        spans = self.spans if spans is None else spans
        return render_span_tree(spans)


def render_span_tree(spans: List[Span]) -> str:
    """Indented text rendering of a span list (children under parents)."""
    present = {s.span_id for s in spans}
    children: Dict[Optional[int], List[Span]] = {}
    for s in spans:
        parent = s.parent_id if s.parent_id in present else None
        children.setdefault(parent, []).append(s)
    lines: List[str] = []

    def walk(parent: Optional[int], depth: int) -> None:
        for s in children.get(parent, []):
            duration = s.duration if s.duration is not None else 0.0
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(s.attrs.items())
            )
            pad = "  " * depth
            lines.append(
                f"{pad}{s.name}  [{duration * 1000:.3f} ms]"
                + (f"  {attrs}" if attrs else "")
            )
            walk(s.span_id, depth + 1)

    walk(None, 0)
    return "\n".join(lines)


class _NullSpan:
    """Do-nothing span; attribute writes are accepted and discarded."""

    __slots__ = ("duration",)
    span_id = 0
    parent_id = None
    name = ""
    start = 0.0
    attrs: Dict[str, object] = {}

    def annotate(self, **attrs) -> "_NullSpan":
        return self

    def to_dict(self) -> dict:
        return {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NullTracer:
    """Disabled tracer: records nothing, returns shared no-op objects."""

    enabled = False
    dropped = 0

    def __init__(self) -> None:
        self._span = _NullSpan()

    @property
    def spans(self) -> List[Span]:
        return []

    def span(self, name: str, **attrs) -> _NullSpan:
        return self._span

    def record(self, name: str, duration: float = 0.0, **attrs) -> _NullSpan:
        return self._span

    def mark(self) -> int:
        return 0

    def spans_since(self, mark: int) -> List[Span]:
        return []

    def truncated_since(self, mark: int) -> bool:
        return False

    def to_json(self, spans=None) -> str:
        return "[]"

    def render_tree(self, spans=None) -> str:
        return ""


NULL_TRACER = NullTracer()

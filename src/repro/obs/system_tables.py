"""``v_monitor`` virtual system tables, served through the real SQL path.

Vertica exposes its Data Collector through system tables; so do we.  Each
table is a :class:`SystemTableDef`: a schema plus a producer that reads
*live* cluster state into deterministic rows.  At query time the cluster
injects, into a copy of the session's catalog snapshot, a ``Table`` and a
replicated ``Projection`` per referenced system table, and wraps the
session's storage provider in :class:`SystemTableProvider`, which serves
those projections from rows materialized at bind time.  Binding, planning,
predicate evaluation, joins, and aggregation all run through the ordinary
binder/planner/executor — a ``SELECT … FROM v_monitor.query_profiles
WHERE …`` is just a query whose scan happens to read the monitor.

Replicated segmentation means a pure system-table query plans single-node
(the initiator serves it), while joins against user tables treat the
virtual table as a replicated build side — both exactly the planner's
existing rules.

The ``dc_*`` event-history tables are *partitioned*: their producers take
the column bounds extracted from the query's WHERE clause and prune on
``time``/``node`` before materializing rows (vDBAHelper's predicate
pushdown).  Pruning is conservative — bounds come from AND-conjuncts
only, and the executor re-applies the full predicate after the scan — so
it can only skip rows that could never match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.catalog.objects import Projection, Segmentation, Table
from repro.common.types import ColumnType, SchemaColumn, TableSchema
from repro.engine.executor import ScanResult, StorageProvider
from repro.engine.expressions import Expr, extract_column_bounds
from repro.errors import CatalogError
from repro.obs.datacollector import DC_TABLES
from repro.shared_storage.s3 import OP_CLASSES
from repro.storage.container import RowSet

SCHEMA_PREFIX = "v_monitor."

_I = ColumnType.INT
_F = ColumnType.FLOAT
_S = ColumnType.VARCHAR


def _schema(*cols: Tuple[str, ColumnType]) -> TableSchema:
    return TableSchema([SchemaColumn(name, ctype) for name, ctype in cols])


@dataclass(frozen=True)
class SystemTableDef:
    name: str  # short name, without the v_monitor. prefix
    schema: TableSchema
    producer: Callable[[object], List[tuple]]
    #: Columns the producer can prune on before materializing rows.  When
    #: non-empty, the producer is called as ``producer(cluster, bounds)``
    #: with the (possibly empty) extracted bounds for these columns.
    partition_columns: Tuple[str, ...] = ()

    @property
    def qualified_name(self) -> str:
        return SCHEMA_PREFIX + self.name

    @property
    def projection_name(self) -> str:
        return f"{self.qualified_name}_vproj"


# -- producers (rows must be deterministically ordered) --------------------------


def _depot_activity(cluster) -> List[tuple]:
    rows = []
    for name in sorted(cluster.nodes):
        node = cluster.nodes[name]
        stats = node.cache.stats
        rows.append(
            (
                name,
                stats.hits,
                stats.misses,
                stats.insertions,
                stats.evictions,
                stats.rejected_by_policy,
                stats.bytes_read,
                stats.bytes_written,
                stats.bytes_evicted,
                stats.bytes_missed,
                stats.prefetch_hits,
                stats.prefetch_bytes_read,
                float(stats.hit_rate),
                float(stats.byte_hit_rate),
                node.cache.used_bytes,
                node.cache.capacity_bytes,
                node.cache.file_count,
            )
        )
    return rows


def _dc_requests_issued(cluster) -> List[tuple]:
    return [
        (
            r.request_id,
            r.node_name,
            r.request,
            r.start_seconds,
            r.duration_seconds,
            r.rows_produced,
            r.depot_hits,
            r.depot_misses,
            r.s3_requests,
            r.s3_dollars,
        )
        for r in sorted(cluster.obs.requests, key=lambda r: r.request_id)
    ]


def _query_profiles(cluster) -> List[tuple]:
    rows = []
    for profile in sorted(cluster.obs.profiles, key=lambda p: p.request_id):
        for op in profile.operators:
            rows.append(
                (
                    profile.request_id,
                    op.node,
                    op.operator,
                    op.path_id,
                    op.rows,
                    op.sim_seconds,
                    op.bytes_from_cache,
                    op.bytes_from_shared,
                    op.depot_hits,
                    op.depot_misses,
                    op.s3_requests,
                    op.s3_dollars,
                    op.detail,
                    op.scan_strategy,
                )
            )
    return rows


def _storage_containers(cluster) -> List[tuple]:
    # Catalogs are shard-filtered per node; the union over up nodes is the
    # cluster-wide container inventory.
    seen: Dict[str, object] = {}
    for node in cluster.up_nodes():
        for sid, container in node.catalog.state.containers.items():
            seen[str(sid)] = container
    rows = []
    for sid in sorted(seen):
        c = seen[sid]
        rows.append(
            (
                sid,
                c.projection,
                c.shard_id,
                c.row_count,
                c.size_bytes,
                "" if c.partition_key is None else str(c.partition_key),
            )
        )
    return rows


def _resource_usage(cluster) -> List[tuple]:
    admission = getattr(cluster, "admission", None)
    rows = []
    for name in sorted(cluster.nodes):
        node = cluster.nodes[name]
        shards = sorted(node.catalog.subscribed_shards or ())
        rows.append(
            (
                name,
                node.state.value,
                len(shards),
                node.execution_slots,
                admission.slots_in_use(name) if admission is not None else 0,
                node.cache.used_bytes,
                node.cache.capacity_bytes,
                node.cache_reads,
                node.shared_reads,
            )
        )
    return rows


def _resource_pools(cluster) -> List[tuple]:
    admission = getattr(cluster, "admission", None)
    if admission is None:
        return []
    rows = []
    for name in sorted(admission.pools):
        pool = admission.pools[name]
        rows.append(
            (
                name,
                len(pool.members),
                admission.pool_capacity(pool),
                admission.pool_in_use(pool),
                pool.config.max_queue_depth,
                pool.config.queue_timeout_seconds,
                pool.admitted,
            )
        )
    return rows


def _resource_queues(cluster) -> List[tuple]:
    admission = getattr(cluster, "admission", None)
    if admission is None:
        return []
    rows = []
    for name in sorted(admission.pools):
        pool = admission.pools[name]
        rows.append(
            (
                name,
                pool.queued,
                pool.peak_queue_depth,
                pool.queued_admissions,
                pool.queue_wait_seconds,
                pool.timeouts,
                pool.rejected_queue_full,
                pool.rejected_busy,
                pool.sheds,
                pool.rejected_draining,
                1 if pool.draining else 0,
            )
        )
    return rows


def _dc_storage_operations(cluster) -> List[tuple]:
    shared = cluster.shared
    op_stats = getattr(shared, "op_stats", None)
    rows = []
    if op_stats:
        for op in sorted(op_stats):
            stats = op_stats[op]
            rows.append(
                (
                    op,
                    stats.requests,
                    stats.bytes,
                    stats.sim_seconds,
                    stats.dollars,
                    stats.transient_faults,
                    stats.throttled,
                )
            )
    else:
        # Generic backend: per-class detail unavailable, report from the
        # aggregate StorageMetrics.  The row set is derived from the same
        # OP_CLASSES the simulated backend uses, so both code paths report
        # identical op classes; metrics fields a generic backend doesn't
        # track (select_requests/bytes_scanned) read as zero.
        m = shared.metrics
        rows = [
            (
                op,
                getattr(m, requests_field, 0),
                getattr(m, bytes_field, 0) if bytes_field else 0,
                0.0, 0.0, 0, 0,
            )
            for op, (requests_field, bytes_field) in sorted(
                _FALLBACK_OP_FIELDS.items()
            )
        ]
    return rows


#: StorageMetrics fields backing each op class in the generic-backend
#: fallback of :func:`_dc_storage_operations`; must cover ``OP_CLASSES``.
_FALLBACK_OP_FIELDS: Dict[str, Tuple[str, Optional[str]]] = {
    "DELETE": ("delete_requests", None),
    "GET": ("get_requests", "bytes_read"),
    "LIST": ("list_requests", None),
    "PUT": ("put_requests", "bytes_written"),
    "SELECT": ("select_requests", "bytes_scanned"),
}
assert set(_FALLBACK_OP_FIELDS) == set(OP_CLASSES)


def _services(cluster) -> List[tuple]:
    # Served from the scheduler the cluster registered (if any); a cluster
    # running without background services reports an empty table rather
    # than failing the bind.
    scheduler = getattr(cluster, "service_scheduler", None)
    if scheduler is None:
        return []
    names = set(scheduler.run_counts) | set(scheduler.error_counts)
    return [
        (
            name,
            scheduler.run_counts.get(name, 0),
            scheduler.error_counts.get(name, 0),
            scheduler.last_errors.get(name, ""),
        )
        for name in sorted(names)
    ]


def _autoscale_events(cluster) -> List[tuple]:
    # Served from the autoscaler the cluster registered (if any); same
    # absent-is-empty discipline as v_monitor.services.
    scaler = getattr(cluster, "autoscaler", None)
    if scaler is None:
        return []
    return [
        (
            e.event_id,
            e.at_seconds,
            e.action,
            e.subcluster,
            e.node,
            e.outcome,
            e.detail,
        )
        for e in scaler.events
    ]


def _designer_runs(cluster) -> List[tuple]:
    # Served from DesignerRun records appended by DatabaseDesigner.apply()
    # (if any); same absent-is-empty discipline as v_monitor.services.
    runs = getattr(cluster, "designer_runs", None)
    if not runs:
        return []
    return [
        (
            r.run_id,
            r.at_seconds,
            r.queries_used,
            r.queries_skipped,
            r.candidates_scored,
            r.search_mode,
            r.regret_bound,
            r.estimated_seconds,
            r.baseline_seconds,
            r.estimated_s3_gets,
            r.baseline_s3_gets,
            ",".join(r.created),
            ",".join(r.dropped),
            ",".join(r.kept),
        )
        for r in runs
    ]


def _dc_event_producer(table: str):
    """Producer for one Data Collector event table.

    Reads the cluster's collector (empty when observability is disabled)
    and lets it prune on the extracted time/node bounds before a single
    row is materialized.
    """

    def produce(cluster, bounds=None) -> List[tuple]:
        dc = getattr(getattr(cluster, "obs", None), "dc", None)
        if dc is None or not dc.enabled:
            return []
        return dc.rows(table, bounds)

    return produce


#: Column types for the dc_* event tables; anything unlisted is VARCHAR.
_DC_COLUMN_TYPES: Dict[str, ColumnType] = {
    "time": _F, "value": _F, "wait_seconds": _F,
    "request_id": _I, "slots": _I, "bytes": _I,
}

_DC_EVENT_DEFS: Tuple[SystemTableDef, ...] = tuple(
    SystemTableDef(
        table,
        _schema(*[(c, _DC_COLUMN_TYPES.get(c, _S)) for c in columns]),
        _dc_event_producer(table),
        partition_columns=tuple(
            c for c in ("time", "node") if c in columns
        ),
    )
    for table, columns in sorted(DC_TABLES.items())
)


SYSTEM_TABLES: Dict[str, SystemTableDef] = {
    d.name: d
    for d in _DC_EVENT_DEFS + (
        SystemTableDef(
            "depot_activity",
            _schema(
                ("node_name", _S), ("hits", _I), ("misses", _I),
                ("insertions", _I), ("evictions", _I),
                ("rejected_by_policy", _I), ("bytes_read", _I),
                ("bytes_written", _I), ("bytes_evicted", _I),
                ("bytes_missed", _I), ("prefetch_hits", _I),
                ("prefetch_bytes_read", _I), ("hit_rate", _F),
                ("byte_hit_rate", _F), ("used_bytes", _I),
                ("capacity_bytes", _I), ("file_count", _I),
            ),
            _depot_activity,
        ),
        SystemTableDef(
            "dc_requests_issued",
            _schema(
                ("request_id", _I), ("node_name", _S), ("request", _S),
                ("start_seconds", _F), ("duration_seconds", _F),
                ("rows_produced", _I), ("depot_hits", _I),
                ("depot_misses", _I), ("s3_requests", _I),
                ("s3_dollars", _F),
            ),
            _dc_requests_issued,
        ),
        SystemTableDef(
            "query_profiles",
            _schema(
                ("request_id", _I), ("node_name", _S), ("operator", _S),
                ("path_id", _I), ("rows_produced", _I),
                ("sim_seconds", _F), ("bytes_from_cache", _I),
                ("bytes_from_shared", _I), ("depot_hits", _I),
                ("depot_misses", _I), ("s3_requests", _I),
                ("s3_dollars", _F), ("detail", _S),
                ("scan_strategy", _S),
            ),
            _query_profiles,
        ),
        SystemTableDef(
            "storage_containers",
            _schema(
                ("sid", _S), ("projection", _S), ("shard_id", _I),
                ("row_count", _I), ("size_bytes", _I), ("partition_key", _S),
            ),
            _storage_containers,
        ),
        SystemTableDef(
            "resource_usage",
            _schema(
                ("node_name", _S), ("node_state", _S), ("subscriptions", _I),
                ("execution_slots", _I), ("slots_in_use", _I),
                ("cache_used_bytes", _I), ("cache_capacity_bytes", _I),
                ("cache_reads", _I), ("shared_reads", _I),
            ),
            _resource_usage,
        ),
        SystemTableDef(
            "resource_pools",
            _schema(
                ("pool_name", _S), ("node_count", _I), ("capacity", _I),
                ("slots_in_use", _I), ("max_queue_depth", _I),
                ("queue_timeout_seconds", _F), ("admitted", _I),
            ),
            _resource_pools,
        ),
        SystemTableDef(
            "resource_queues",
            _schema(
                ("pool_name", _S), ("queue_depth", _I),
                ("peak_queue_depth", _I), ("queued_admissions", _I),
                ("queue_wait_seconds", _F), ("timeouts", _I),
                ("rejected_queue_full", _I), ("rejected_busy", _I),
                ("sheds", _I), ("rejected_draining", _I), ("draining", _I),
            ),
            _resource_queues,
        ),
        SystemTableDef(
            "services",
            _schema(
                ("service", _S), ("runs", _I), ("errors", _I),
                ("last_error", _S),
            ),
            _services,
        ),
        SystemTableDef(
            "autoscale_events",
            _schema(
                ("event_id", _I), ("at_seconds", _F), ("action", _S),
                ("subcluster", _S), ("node", _S), ("outcome", _S),
                ("detail", _S),
            ),
            _autoscale_events,
        ),
        SystemTableDef(
            "designer_runs",
            _schema(
                ("run_id", _I), ("at_seconds", _F), ("queries_used", _I),
                ("queries_skipped", _I), ("candidates_scored", _I),
                ("search_mode", _S), ("regret_bound", _F),
                ("estimated_seconds", _F), ("baseline_seconds", _F),
                ("estimated_s3_gets", _F), ("baseline_s3_gets", _F),
                ("created", _S), ("dropped", _S), ("kept", _S),
            ),
            _designer_runs,
        ),
        SystemTableDef(
            "dc_storage_operations",
            _schema(
                ("operation", _S), ("requests", _I), ("bytes", _I),
                ("sim_seconds", _F), ("dollars", _F),
                ("transient_faults", _I), ("throttled", _I),
            ),
            _dc_storage_operations,
        ),
    )
}


def system_tables_referenced(statement) -> List[str]:
    """Qualified ``v_monitor.*`` names a SELECT references (FROM + JOINs).

    Raises :class:`CatalogError` for an unknown ``v_monitor`` table so the
    user gets the available names instead of a generic bind failure.
    """
    refs = [t.name for t in statement.tables]
    refs += [j.table.name for j in statement.joins]
    names: List[str] = []
    for name in refs:
        if not name.startswith(SCHEMA_PREFIX):
            continue
        short = name[len(SCHEMA_PREFIX):]
        if short not in SYSTEM_TABLES:
            available = ", ".join(sorted(SYSTEM_TABLES))
            raise CatalogError(
                f"unknown system table {name!r}; available: {available}"
            )
        if name not in names:
            names.append(name)
    return names


def bind_system_tables(
    cluster,
    state,
    provider: StorageProvider,
    names: Sequence[str],
    statement=None,
):
    """Inject virtual tables into a copy of ``state``; wrap ``provider``.

    Rows are materialized here — at bind time — so one query sees one
    consistent reading of the monitor, and the query's own execution does
    not show up in its result.

    When ``statement`` is a single-table, join-free SELECT with a WHERE
    clause, its AND-conjunct column bounds are handed to partitioned
    producers (the ``dc_*`` tables) so they prune on ``time``/``node``
    before materializing.  Bounds are only a necessary condition — the
    executor still applies the full predicate — so multi-table or
    aliased queries simply skip pruning rather than risking wrong rows.
    """
    bounds: Dict[str, Tuple[object, object]] = {}
    if (
        statement is not None
        and len(getattr(statement, "tables", ())) == 1
        and not getattr(statement, "joins", ())
        and getattr(statement, "where", None) is not None
    ):
        bounds = extract_column_bounds(statement.where)
    virtual = state.copy()
    rowsets: Dict[str, RowSet] = {}
    for name in names:
        definition = SYSTEM_TABLES[name[len(SCHEMA_PREFIX):]]
        virtual.tables[name] = Table(name=name, schema=definition.schema)
        projection = Projection(
            name=definition.projection_name,
            anchor_table=name,
            columns=tuple(definition.schema.names),
            sort_order=(),
            segmentation=Segmentation.replicated(),
        )
        virtual.projections[projection.name] = projection
        if definition.partition_columns:
            pruned = {
                column: bounds[column]
                for column in definition.partition_columns
                if column in bounds and bounds[column] != (None, None)
            }
            rows = definition.producer(cluster, pruned or None)
        else:
            rows = definition.producer(cluster)
        rowsets[projection.name] = RowSet.from_rows(definition.schema, rows)
    return virtual, SystemTableProvider(provider, rowsets)


class SystemTableProvider(StorageProvider):
    """Serves injected ``v_monitor`` projections; delegates everything else."""

    def __init__(self, base: StorageProvider, rowsets: Dict[str, RowSet]):
        self._base = base
        self._rowsets = rowsets

    def participants(self) -> List[str]:
        return self._base.participants()

    def initiator(self) -> str:
        return self._base.initiator()

    @property
    def preserves_segmentation(self) -> bool:
        return self._base.preserves_segmentation

    def make_pipeline_charges(self):
        return self._base.make_pipeline_charges()

    def attach_pipeline(self, charges) -> None:
        self._base.attach_pipeline(charges)

    def set_pushdown(self, mode: str) -> None:
        self._base.set_pushdown(mode)

    def note_scan_eligibility(self, eligible: bool) -> None:
        note = getattr(self._base, "note_scan_eligibility", None)
        if note is not None:
            note(eligible)

    def scan(
        self,
        node: str,
        projection: str,
        columns: Sequence[str],
        predicate: Optional[Expr],
        replicated: bool,
    ) -> ScanResult:
        rows = self._rowsets.get(projection)
        if rows is None:
            return self._base.scan(node, projection, columns, predicate, replicated)
        # Virtual scans are free: no containers, no IO, no depot traffic.
        # The executor re-applies the predicate after every scan, so
        # ignoring it here is correct (just unpruned).
        return ScanResult(rows=rows.select(list(columns)))
